//===- concurrent/ConcurrentRelation.cpp - Sharded thread-safe facade --------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include <unordered_set>

using namespace relc;

ConcurrentRelation::ConcurrentRelation(const Decomposition &D,
                                       ConcurrentOptions Opts)
    : Router(Opts.ShardColumn ? *Opts.ShardColumn
                              : ShardRouter::defaultShardColumn(D),
             Opts.NumShards),
      Locks(Opts.NumShards) {
  assert(Router.shardColumn() < D.catalog().size() &&
         "shard column is not a column of the relation");
  Shards.reserve(Opts.NumShards);
  for (unsigned I = 0; I != Opts.NumShards; ++I) {
    Shards.push_back(std::make_unique<SynthesizedRelation>(Decomposition(D)));
    Shards.back()->enableConcurrentReads();
  }
}

bool ConcurrentRelation::insert(const Tuple &T) {
  unsigned S = Router.shardOf(T);
  auto Lock = Locks.exclusive(S);
  bool Changed = Shards[S]->insert(T);
  if (Changed)
    Count.fetch_add(1, std::memory_order_relaxed);
  return Changed;
}

size_t ConcurrentRelation::remove(const Tuple &Pattern) {
  size_t Removed;
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    Removed = Shards[S]->remove(Pattern);
  } else {
    Removed = removeAllShards(Pattern);
  }
  Count.fetch_sub(Removed, std::memory_order_relaxed);
  return Removed;
}

size_t ConcurrentRelation::removeAllShards(const Tuple &Pattern) {
  StripedLockSet::AllExclusiveGuard Guard(Locks);
  size_t Removed = 0;
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    Removed += S->remove(Pattern);
  return Removed;
}

size_t ConcurrentRelation::update(const Tuple &Pattern, const Tuple &Changes) {
  assert(!Pattern.columns().intersects(Changes.columns()) &&
         "update changes must be disjoint from the pattern");
  if (Changes.has(Router.shardColumn()))
    return updateRehoming(Pattern, Changes);
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    return Shards[S]->update(Pattern, Changes);
  }
  // The pattern is a key, so at most one shard holds a match — but
  // without the shard column which one is unknown: take every writer
  // lock (ascending, per the lock order) and try each shard in turn.
  StripedLockSet::AllExclusiveGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    if (size_t Updated = S->update(Pattern, Changes))
      return Updated;
  return 0;
}

size_t ConcurrentRelation::updateRehoming(const Tuple &Pattern,
                                          const Tuple &Changes) {
  // The changes rewrite the shard column (so, by disjointness, the
  // pattern does not bind it) and the tuple may change owners: locate
  // the matching tuple, then either update in place (same owner) or
  // migrate it (remove + reinsert), all under every writer lock.
  StripedLockSet::AllExclusiveGuard Guard(Locks);
  ColumnSet All = catalog().allColumns();
  for (unsigned I = 0; I != Shards.size(); ++I) {
    Tuple Old;
    bool Found = false;
    Shards[I]->scanFrames(Pattern, All, [&](const BindingFrame &F) {
      Old = F.toTuple(All);
      Found = true;
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      continue;
    Tuple Merged = Old.merge(Changes);
    unsigned Target = Router.shardOf(Merged);
    if (Target == I)
      return Shards[I]->update(Pattern, Changes);
    [[maybe_unused]] size_t Removed = Shards[I]->remove(Old);
    assert(Removed == 1 && "matched tuple vanished during migration");
    if (!Shards[Target]->insert(Merged))
      // The merged tuple already existed in the target shard — an
      // FD-violating input the sequential engine would also mishandle;
      // keep the size counter consistent with the shards regardless.
      Count.fetch_sub(1, std::memory_order_relaxed);
    return 1;
  }
  return 0;
}

std::vector<Tuple> ConcurrentRelation::query(const Tuple &Pattern,
                                             ColumnSet OutputCols) const {
  std::vector<Tuple> Result;
  std::unordered_set<Tuple> Seen;
  // One Seen set across every shard: a projection that drops the shard
  // column can surface the same result tuple from several shards, and
  // query's contract is set semantics.
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    Tuple Projected = F.toTuple(OutputCols);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
    return true;
  });
  return Result;
}

void ConcurrentRelation::scan(const Tuple &Pattern, ColumnSet OutputCols,
                              function_ref<bool(const Tuple &)> Fn) const {
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

void ConcurrentRelation::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  // NOTE: the callback runs under a shard's reader lock, so unlike the
  // sequential engine's reentrant scans it must not issue operations
  // on this ConcurrentRelation (a nested mutation deadlocks; a nested
  // read re-acquires a held shared_mutex, which is undefined).
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.shared(S);
    Shards[S]->scanFrames(Pattern, OutputCols, Fn);
    return;
  }
  bool Stopped = false;
  for (unsigned I = 0; I != Shards.size() && !Stopped; ++I) {
    auto Lock = Locks.shared(I);
    Shards[I]->scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
      if (!Fn(F)) {
        Stopped = true;
        return false;
      }
      return true;
    });
  }
}

bool ConcurrentRelation::contains(const Tuple &Pattern) const {
  bool Found = false;
  scanFrames(Pattern, ColumnSet(), [&](const BindingFrame &) {
    Found = true;
    return false;
  });
  return Found;
}

void ConcurrentRelation::clear() {
  StripedLockSet::AllExclusiveGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    S->clear();
  Count.store(0, std::memory_order_relaxed);
}

Relation ConcurrentRelation::toRelation() const {
  Relation Result(catalog().allColumns());
  for (unsigned I = 0; I != Shards.size(); ++I) {
    auto Lock = Locks.shared(I);
    Result = Relation::unionWith(Result, Shards[I]->toRelation());
  }
  return Result;
}

size_t ConcurrentRelation::liveInstances() const {
  size_t Live = 0;
  for (unsigned I = 0; I != Shards.size(); ++I) {
    auto Lock = Locks.shared(I);
    Live += Shards[I]->liveInstances();
  }
  return Live;
}

void ConcurrentRelation::reoptimize() {
  StripedLockSet::AllExclusiveGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    S->reoptimize();
}
