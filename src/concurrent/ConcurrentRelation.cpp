//===- concurrent/ConcurrentRelation.cpp - Sharded thread-safe facade --------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "concurrent/BoundedQueue.h"
#include "concurrent/ScanPool.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

using namespace relc;

ConcurrentRelation::ConcurrentRelation(const Decomposition &D,
                                       ConcurrentOptions Opts)
    : Router(Opts.ShardColumn ? *Opts.ShardColumn
                              : ShardRouter::defaultShardColumn(D),
             Opts.NumShards),
      Locks(Opts.NumShards), Proto(D),
      // Clamp: capacity 0 would be modulo-by-zero UB inside the
      // queue's ring in release builds (its own check is assert-only).
      ScanQueueCap(Opts.ScanQueueCapacity > 0 ? Opts.ScanQueueCapacity
                                              : 1) {
  assert(Router.shardColumn() < D.catalog().size() &&
         "shard column is not a column of the relation");
  FdProbesRoute = true;
  for (const FuncDep &Fd : D.spec()->fds().deps())
    FdProbesRoute &= Fd.Lhs.contains(Router.shardColumn());
  Gates = std::make_unique<EpochGate[]>(Opts.NumShards);
  AllShardIdx.resize(Opts.NumShards);
  for (unsigned I = 0; I != Opts.NumShards; ++I)
    AllShardIdx[I] = I;
  Shards.reserve(Opts.NumShards);
  Pins.reserve(Opts.NumShards);
  for (unsigned I = 0; I != Opts.NumShards; ++I) {
    Shards.push_back(freshShard());
    Pins.push_back(std::make_shared<std::atomic<size_t>>(0));
  }
}

std::shared_ptr<SynthesizedRelation> ConcurrentRelation::freshShard() const {
  auto S = std::make_shared<SynthesizedRelation>(Decomposition(Proto));
  S->enableConcurrentReads();
  // Freed node memory outlives the epoch grace period, so a reader
  // racing ahead of its gate check can never touch unmapped memory.
  S->enableDeferredReclamation();
  return S;
}

void ConcurrentRelation::retireShardRef(
    std::shared_ptr<SynthesizedRelation> Old) {
  EpochManager::global().retireObject(
      new std::shared_ptr<SynthesizedRelation>(std::move(Old)));
}

SynthesizedRelation &ConcurrentRelation::writable(unsigned S) {
  std::shared_ptr<SynthesizedRelation> &Cur = Shards[S];
  // The acquire pairs with Snapshot handles' release-decrements: a
  // zero read here happens-after every read any dropped handle made
  // of this state, so mutating in place cannot race them. (A relaxed
  // use_count probe would establish no such edge — see the header.)
  if (Pins[S]->load(std::memory_order_acquire) == 0)
    return *Cur; // unpinned: the steady-state fast path
  // A snapshot pins this instance: clone it (the one-time COW cost of
  // the first write after the snapshot), freeze the original, swap.
  std::shared_ptr<SynthesizedRelation> Fresh = freshShard();
  ColumnSet All = catalog().allColumns();
  Cur->scanFrames(Tuple(), All, [&](const BindingFrame &F) {
    [[maybe_unused]] bool Ins = Fresh->insert(F.toTuple(All));
    assert(Ins && "shard clone re-inserted a duplicate");
    return true;
  });
  // In-flight epoch hand-backs from pre-snapshot mutations must not
  // land in the frozen arena's pending stack (no writer will drain it
  // again); detaching bumps the generation so they drop instead.
  Cur->freezeArena();
  retireShardRef(std::move(Cur));
  Cur = std::move(Fresh);
  // The clone starts a new pin generation: handles pinning the frozen
  // state keep their (now-detached) counter; the live slot gets a
  // fresh zero so the next mutation is in-place again.
  Pins[S] = std::make_shared<std::atomic<size_t>>(0);
  return *Cur;
}

bool ConcurrentRelation::insert(const Tuple &T) {
  unsigned S = Router.shardOf(T);
  auto Lock = Locks.exclusive(S);
  EpochWriterFence Fence(Gates[S]);
  bool Changed = writable(S).insert(T);
  if (Changed)
    Count.fetch_add(1, std::memory_order_relaxed);
  return Changed;
}

size_t ConcurrentRelation::remove(const Tuple &Pattern) {
  // The counter update must stay inside the stripe hold: snapshot()
  // cuts {shard pointers, ticket, Count} under an all-stripe shared
  // acquisition, so a decrement after the exclusive scope closes
  // could land on the far side of a snapshot that already saw the
  // shrunken shard.
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    EpochWriterFence Fence(Gates[S]);
    // Probe before the COW gate: a miss must not clone a pinned shard.
    size_t Removed = Shards[S]->contains(Pattern)
                         ? writable(S).remove(Pattern)
                         : 0;
    Count.fetch_sub(Removed, std::memory_order_relaxed);
    return Removed;
  }
  return removeAllShards(Pattern);
}

size_t ConcurrentRelation::removeAllShards(const Tuple &Pattern) {
  AllShardsGuard Guard(Locks);
  EpochWriterFence Fence = fenceAll();
  size_t Removed = 0;
  for (unsigned S = 0; S != Shards.size(); ++S)
    if (Shards[S]->contains(Pattern))
      Removed += writable(S).remove(Pattern);
  Count.fetch_sub(Removed, std::memory_order_relaxed);
  return Removed;
}

size_t ConcurrentRelation::update(const Tuple &Pattern, const Tuple &Changes) {
  assert(!Pattern.columns().intersects(Changes.columns()) &&
         "update changes must be disjoint from the pattern");
  if (Changes.has(Router.shardColumn()))
    return updateRehoming(Pattern, Changes);
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    EpochWriterFence Fence(Gates[S]);
    return Shards[S]->contains(Pattern) ? writable(S).update(Pattern, Changes)
                                        : 0;
  }
  // The pattern is a key, so at most one shard holds a match — but
  // without the shard column which one is unknown: take every writer
  // lock (ascending, per the lock order) and try each shard in turn.
  AllShardsGuard Guard(Locks);
  EpochWriterFence Fence = fenceAll();
  for (unsigned S = 0; S != Shards.size(); ++S) {
    if (!Shards[S]->contains(Pattern))
      continue;
    if (size_t Updated = writable(S).update(Pattern, Changes))
      return Updated;
  }
  return 0;
}

size_t ConcurrentRelation::updateRehoming(const Tuple &Pattern,
                                          const Tuple &Changes) {
  // The changes rewrite the shard column (so, by disjointness, the
  // pattern does not bind it) and the tuple may change owners: locate
  // the matching tuple, then either update in place (same owner) or
  // migrate it (remove + reinsert), all under every writer lock.
  AllShardsGuard Guard(Locks);
  EpochWriterFence Fence = fenceAll();
  ColumnSet All = catalog().allColumns();
  for (unsigned I = 0; I != Shards.size(); ++I) {
    Tuple Old;
    bool Found = false;
    Shards[I]->scanFrames(Pattern, All, [&](const BindingFrame &F) {
      Old = F.toTuple(All);
      Found = true;
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      continue;
    Tuple Merged = Old.merge(Changes);
    unsigned Target = Router.shardOf(Merged);
    if (Target == I)
      return writable(I).update(Pattern, Changes);
    [[maybe_unused]] size_t Removed = writable(I).remove(Old);
    assert(Removed == 1 && "matched tuple vanished during migration");
    if (!writable(Target).insert(Merged))
      // The merged tuple already existed in the target shard — an
      // FD-violating input the sequential engine would also mishandle;
      // keep the size counter consistent with the shards regardless.
      Count.fetch_sub(1, std::memory_order_relaxed);
    return 1;
  }
  return 0;
}

bool ConcurrentRelation::upsert(
    const Tuple &Key, function_ref<void(const BindingFrame *, Tuple &)> Fn) {
  // The routed path re-checks this inside SynthesizedRelation::upsert;
  // assert here too so the fan-out path catches non-key patterns.
  assert(spec()->fds().isKey(Key.columns(), spec()->columns()) &&
         "upsert pattern must be a key");
  if (Router.routes(Key.columns())) {
    // The common case the primitive exists for: the key owns its shard
    // (and, being disjoint from the key, the new values cannot rewrite
    // the shard column), so one writer lock linearizes the whole
    // read-modify-write cycle.
    unsigned S = Router.shardOf(Key);
    auto Lock = Locks.exclusive(S);
    EpochWriterFence Fence(Gates[S]);
    // Follow the shard's size delta rather than the return value: an
    // FD-violating collision with another key can make the reinsert
    // no-op in release builds, and the counter must track the shards
    // regardless (as the fan-out path and the emitted facade do).
    SynthesizedRelation &W = writable(S);
    size_t Before = W.size();
    bool Inserted = W.upsert(Key, Fn);
    size_t After = W.size();
    if (After > Before)
      Count.fetch_add(1, std::memory_order_relaxed);
    else if (After < Before)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Inserted;
  }
  // The key misses the shard column: the owner is unknown and the new
  // values may rewrite the shard column, migrating the tuple — the
  // same all-writer-locks discipline as updateRehoming.
  AllShardsGuard Guard(Locks);
  EpochWriterFence Fence = fenceAll();
  ColumnSet All = catalog().allColumns();
  ColumnSet Rest = All.minus(Key.columns());
  for (unsigned I = 0; I != Shards.size(); ++I) {
    Tuple Old, Values;
    bool Found = false;
    Shards[I]->scanFrames(Key, Rest, [&](const BindingFrame &F) {
      Found = true;
      Old = F.toTuple(All);
      Fn(&F, Values);
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      continue;
    assert(Values.columns().subsetOf(Rest) &&
           "upsert values must not rebind key columns");
    if (Values.empty())
      return false;
    Tuple Merged = Old.merge(Values);
    unsigned Target = Router.shardOf(Merged);
    if (Target == I) {
      writable(I).update(Key, Values);
      return false;
    }
    [[maybe_unused]] size_t Removed = writable(I).remove(Old);
    assert(Removed == 1 && "matched tuple vanished during upsert");
    if (!writable(Target).insert(Merged))
      // FD-violating collision in the target shard; keep the counter
      // consistent with the shards (see updateRehoming).
      Count.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  Tuple Values;
  Fn(nullptr, Values);
  assert(Values.columns() == Rest &&
         "upsert must bind every non-key column when inserting");
  Tuple Full = Key.merge(Values);
  if (writable(Router.shardOf(Full)).insert(Full))
    Count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<unsigned> ConcurrentRelation::txRoutedShard(const TxOp &Op) const {
  switch (Op.Op) {
  case TxOp::Insert:
    // Full tuples always bind the shard column; the op still fans out
    // when an FD probe cannot be confined to the owning shard.
    return FdProbesRoute ? std::optional<unsigned>(Router.shardOf(Op.A))
                         : std::nullopt;
  case TxOp::Remove:
    // Removal needs no FD probes: routable whenever the pattern is.
    if (Router.routes(Op.A.columns()))
      return Router.shardOf(Op.A);
    return std::nullopt;
  case TxOp::Update:
    if (Op.B.has(Router.shardColumn()))
      return std::nullopt; // may migrate the tuple between shards
    if (!Router.routes(Op.A.columns()) || !FdProbesRoute)
      return std::nullopt;
    return Router.shardOf(Op.A);
  case TxOp::Upsert:
    // A routed key contains the shard column, and upsert values are
    // disjoint from the key, so the new values cannot rewrite it.
    if (!Router.routes(Op.A.columns()) || !FdProbesRoute)
      return std::nullopt;
    return Router.shardOf(Op.A);
  }
  assert(false && "unknown TxOp kind");
  return std::nullopt;
}

ConcurrentRelation::TxLockPlan
ConcurrentRelation::transactLockPlan(const std::vector<TxOp> &Ops) const {
  TxLockPlan Plan;
  for (const TxOp &Op : Ops) {
    std::optional<unsigned> S = txRoutedShard(Op);
    if (!S) {
      Plan.AllShards = true;
      Plan.Stripes.clear();
      for (unsigned I = 0; I != Router.numShards(); ++I)
        Plan.Stripes.push_back(I);
      return Plan;
    }
    Plan.Stripes.push_back(*S);
  }
  std::sort(Plan.Stripes.begin(), Plan.Stripes.end());
  Plan.Stripes.erase(std::unique(Plan.Stripes.begin(), Plan.Stripes.end()),
                     Plan.Stripes.end());
  return Plan;
}

TxResult ConcurrentRelation::transact(const std::vector<TxOp> &Ops) {
  TxLockPlan Plan = transactLockPlan(Ops);
  if (Plan.AllShards) {
    // The all-stripes guard and the subset guard share the ascending
    // acquisition order, so mixed transactions cannot deadlock.
    AllShardsGuard Guard(Locks);
    EpochWriterFence Fence = fenceAll();
    return transactLocked(Ops, Plan.Stripes);
  }
  ShardSetGuard Guard(Locks, Plan.Stripes);
  EpochWriterFence Fence(Gates.get(), Guard.stripes().data(),
                         Guard.stripes().size());
  return transactLocked(Ops, Guard.stripes());
}

TxResult ConcurrentRelation::transact(function_ref<void(TxBatch &)> Build) {
  TxBatch Tx;
  Build(Tx);
  return transact(Tx.ops());
}

TxResult ConcurrentRelation::transactKeys(
    const std::vector<Tuple> &Keys,
    function_ref<bool(std::vector<TxKeyView> &)> Fn) {
  assert(!Keys.empty() && "transactKeys needs at least one key");
  ColumnSet KeyCols = Keys.front().columns();
  assert(spec()->fds().isKey(KeyCols, spec()->columns()) &&
         "transactKeys patterns must form a key");
  for ([[maybe_unused]] const Tuple &K : Keys)
    assert(K.columns() == KeyCols &&
           "every transactKeys key must bind the same columns");
  ColumnSet Rest = catalog().allColumns().minus(KeyCols);

  // Lock footprint from upsert-shaped pseudo-ops: each key's eventual
  // write-back (update in place, or insert of key+values) routes to
  // the key's shard exactly when an upsert of that key would, so the
  // upsert plan covers every op transactLocked will see below.
  std::vector<TxOp> Pseudo;
  Pseudo.reserve(Keys.size());
  for (const Tuple &K : Keys)
    Pseudo.push_back(TxOp::upsert(K, [](const BindingFrame *, Tuple &) {}));
  TxLockPlan Plan = transactLockPlan(Pseudo);

  auto Run = [&](const std::vector<unsigned> &Scope) -> TxResult {
    // Phase 1 (read, all stripes held): resolve every key's current
    // values. Routed keys probe their owning shard; otherwise every
    // stripe is in Scope and all shards are searched.
    std::vector<TxKeyView> Views(Keys.size());
    for (size_t I = 0; I != Keys.size(); ++I) {
      TxKeyView &V = Views[I];
      auto Probe = [&](unsigned S) {
        Shards[S]->scanFrames(Keys[I], Rest, [&](const BindingFrame &F) {
          V.Found = true;
          V.Values = F.toTuple(Rest);
          return false; // the pattern is a key: at most one match
        });
        return V.Found;
      };
      if (Router.routes(KeyCols)) {
        Probe(Router.shardOf(Keys[I]));
      } else {
        for (unsigned S = 0; S != Shards.size() && !Probe(S); ++S) {
        }
      }
    }

    // Phase 2: one callback over all views — the N-key read-modify-
    // write the generated transactN_by_<key> methods compile.
    std::vector<Tuple> Before;
    Before.reserve(Views.size());
    for (const TxKeyView &V : Views)
      Before.push_back(V.Values);
    if (!Fn(Views))
      return TxResult{false, Keys.size(), 0};

    // Phase 3 (write-back): one op per key that changed. Absent keys
    // must come back fully bound (conditional abort otherwise, as for
    // TxOp::upsert), found keys write a delta update.
    std::vector<TxOp> Ops;
    std::vector<size_t> OpKey; // op index -> key index, for FailedOp
    for (size_t I = 0; I != Keys.size(); ++I) {
      TxKeyView &V = Views[I];
      if (!V.Found) {
        if (V.Values.columns() != Rest)
          return TxResult{false, I, 0}; // under-bound insert: abort
        Ops.push_back(TxOp::insert(Keys[I].merge(V.Values)));
        OpKey.push_back(I);
        continue;
      }
      assert(V.Values.columns().subsetOf(Rest) &&
             "transactKeys values must not rebind key columns");
      if (V.Values == Before[I])
        continue; // untouched: no write for this key
      Ops.push_back(TxOp::update(Keys[I], V.Values));
      OpKey.push_back(I);
    }
    if (Ops.empty())
      // Read-only batch: nothing to apply, but still a committed unit;
      // draw its ticket while the stripes are held.
      return TxResult{true, 0,
                      TxTickets.fetch_add(1, std::memory_order_relaxed)};
    TxResult R = transactLocked(Ops, Scope);
    if (!R.Committed)
      R.FailedOp = OpKey[R.FailedOp];
    return R;
  };

  if (Plan.AllShards) {
    AllShardsGuard Guard(Locks);
    EpochWriterFence Fence = fenceAll();
    return Run(Plan.Stripes);
  }
  ShardSetGuard Guard(Locks, Plan.Stripes);
  EpochWriterFence Fence(Gates.get(), Guard.stripes().data(),
                         Guard.stripes().size());
  return Run(Guard.stripes());
}

TxResult ConcurrentRelation::transactLocked(const std::vector<TxOp> &Ops,
                                            const std::vector<unsigned> &Scope) {
  ColumnSet All = catalog().allColumns();
  auto ScopeSize = [&] {
    size_t N = 0;
    for (unsigned S : Scope)
      N += Shards[S]->size();
    return N;
  };
  size_t Before = ScopeSize();

  // One undo log across shards: (shard, inverse op), applied in
  // reverse on abort.
  std::vector<std::pair<unsigned, TxOp>> Undo;
  std::vector<TxOp> Tmp;

  // When a durability hook is armed, every applied op also derives its
  // REDO: the concrete state change, read off the undo delta the op
  // just produced (an inverse remove marks an insert of exactly that
  // tuple; an inverse insert marks a removal; an inverse update marks
  // an update whose new values are re-read from the live tuple). The
  // redo ops carry no callbacks — upserts resolve to the write they
  // performed — so they serialize byte-for-byte, and replaying them in
  // ticket order reproduces every intermediate state of the original
  // execution (which is why recovery replay can never abort).
  const bool HookArmed = static_cast<bool>(Hook);
  std::vector<TxOp> Redo;
  auto DeriveRedo = [&](const TxOp &Op, size_t UndoStart) {
    if (!HookArmed)
      return;
    for (size_t J = UndoStart; J != Undo.size(); ++J) {
      unsigned S = Undo[J].first;
      const TxOp &U = Undo[J].second;
      switch (U.Op) {
      case TxOp::Remove: // inverse of an insert of exactly U.A
        Redo.push_back(TxOp::insert(U.A));
        break;
      case TxOp::Insert: // inverse of a removal of exactly U.A
        Redo.push_back(TxOp::remove(U.A));
        break;
      case TxOp::Update: {
        // Inverse update: re-read the tuple for the values just
        // written (U.B holds the old ones over the same columns).
        Tuple Now;
        [[maybe_unused]] bool Found = false;
        Shards[S]->scanFrames(Op.A, All, [&](const BindingFrame &F) {
          Now = F.toTuple(All);
          Found = true;
          return false; // the pattern is a key: at most one match
        });
        assert(Found && "updated tuple vanished before redo derivation");
        Redo.push_back(TxOp::update(Op.A, Now.project(U.B.columns())));
        break;
      }
      case TxOp::Upsert:
        assert(false && "upserts never appear in undo logs");
        break;
      }
    }
  };
  auto ApplyOn = [&](unsigned S, const TxOp &Op) {
    Tmp.clear();
    bool Ok = writable(S).applyTxOp(Op, Tmp);
    for (TxOp &U : Tmp)
      Undo.emplace_back(S, std::move(U));
    return Ok;
  };
  // Cross-shard FD conflict check for the fan-out path. When probes
  // route, the owning shard sees every possible witness; otherwise
  // every stripe is held (fan-out mode) and all shards are consulted.
  auto Conflicts = [&](const Tuple &T, const Tuple *Exclude) {
    if (FdProbesRoute)
      return Shards[Router.shardOf(T)]->insertConflictsFds(T, Exclude);
    for (const std::shared_ptr<SynthesizedRelation> &S : Shards)
      if (S->insertConflictsFds(T, Exclude))
        return true;
    return false;
  };

  size_t Failed = Ops.size();
  for (size_t I = 0; I != Ops.size() && Failed == Ops.size(); ++I) {
    const TxOp &Op = Ops[I];
    size_t UndoStart = Undo.size();
    if (std::optional<unsigned> S = txRoutedShard(Op)) {
      // Routed: ownership confines matches — and, via FdProbesRoute,
      // conflict witnesses — to one shard, so the sequential engine's
      // per-shard apply is the whole story.
      if (!ApplyOn(*S, Op))
        Failed = I;
      else
        DeriveRedo(Op, UndoStart);
      continue;
    }
    // Fan-out: every stripe is held (the lock plan degraded to
    // AllShards the moment any op could not route).
    switch (Op.Op) {
    case TxOp::Insert: {
      assert(Op.A.columns() == All && "insert must bind every column");
      if (Conflicts(Op.A, nullptr)) {
        Failed = I;
        break;
      }
      // The global check already validated the FDs: mutate directly
      // rather than through applyTxOp, whose local re-check would
      // repeat every probe while all writer stripes are held.
      unsigned S = Router.shardOf(Op.A);
      if (writable(S).insert(Op.A))
        Undo.emplace_back(S, TxOp::remove(Op.A));
      break;
    }
    case TxOp::Remove: {
      if (Router.routes(Op.A.columns())) {
        ApplyOn(Router.shardOf(Op.A), Op);
        break;
      }
      for (unsigned S = 0; S != Shards.size(); ++S)
        if (Shards[S]->contains(Op.A)) // don't COW-clone a missed shard
          ApplyOn(S, Op);
      break;
    }
    case TxOp::Update: {
      assert(!Op.A.columns().intersects(Op.B.columns()) &&
             "update changes must be disjoint from the pattern");
      // The pattern is a key: at most one shard holds the match.
      Tuple Old;
      unsigned Owner = ~0u;
      for (unsigned S = 0; S != Shards.size() && Owner == ~0u; ++S)
        Shards[S]->scanFrames(Op.A, All, [&](const BindingFrame &F) {
          Old = F.toTuple(All);
          Owner = S;
          return false;
        });
      if (Owner == ~0u)
        break; // no match: a committed no-op
      Tuple Merged = Old.merge(Op.B);
      if (Merged == Old)
        break;
      if (Conflicts(Merged, &Old)) {
        Failed = I;
        break;
      }
      unsigned Target = Router.shardOf(Merged);
      if (Target == Owner) {
        // Validated above; update in place without applyTxOp's
        // redundant re-scan and re-probe.
        [[maybe_unused]] size_t N = writable(Owner).update(Op.A, Op.B);
        assert(N == 1 && "matched tuple vanished during update");
        Undo.emplace_back(Owner,
                          TxOp::update(Op.A, Old.project(Op.B.columns())));
        break;
      }
      // Migration inside the batch: remove + reinsert, two inverse
      // ops (reverse application restores the old home first... last).
      [[maybe_unused]] size_t Removed = writable(Owner).remove(Old);
      assert(Removed == 1 && "matched tuple vanished during migration");
      Undo.emplace_back(Owner, TxOp::insert(Old));
      [[maybe_unused]] bool Ins = writable(Target).insert(Merged);
      assert(Ins && "conflict-free migration insert must change");
      Undo.emplace_back(Target, TxOp::remove(std::move(Merged)));
      break;
    }
    case TxOp::Upsert: {
      assert((Op.Fn || Op.FnChecked) && "upsert op needs a callback");
      ColumnSet Rest = All.minus(Op.A.columns());
      Tuple Old, Values;
      unsigned Owner = ~0u;
      bool Vetoed = false;
      // The callback runs exactly once: inside the owner's scan (the
      // frame is live there), or on nullptr after every shard missed.
      for (unsigned S = 0; S != Shards.size() && Owner == ~0u; ++S)
        Shards[S]->scanFrames(Op.A, Rest, [&](const BindingFrame &F) {
          Owner = S;
          Old = F.toTuple(All);
          Vetoed = !Op.runUpsertFn(&F, Values);
          return false;
        });
      if (Vetoed) {
        Failed = I; // checked callback refused: a defined abort
        break;
      }
      if (Owner == ~0u) {
        if (!Op.runUpsertFn(nullptr, Values)) {
          Failed = I;
          break;
        }
        if (Values.columns() != Rest) {
          Failed = I; // conditional abort: see TxOp::Fn
          break;
        }
        Tuple Full = Op.A.merge(Values);
        if (Conflicts(Full, nullptr)) {
          Failed = I;
          break;
        }
        unsigned Target = Router.shardOf(Full);
        [[maybe_unused]] bool Ins = writable(Target).insert(Full);
        assert(Ins && "conflict-free upsert insert must change");
        Undo.emplace_back(Target, TxOp::remove(std::move(Full)));
        break;
      }
      assert(Values.columns().subsetOf(Rest) &&
             "upsert values must not rebind key columns");
      if (Values.empty())
        break;
      Tuple Merged = Old.merge(Values);
      if (Merged == Old)
        break;
      if (Conflicts(Merged, &Old)) {
        Failed = I;
        break;
      }
      unsigned Target = Router.shardOf(Merged);
      if (Target == Owner) {
        [[maybe_unused]] size_t N = writable(Owner).update(Op.A, Values);
        assert(N == 1 && "matched tuple vanished during upsert");
        Undo.emplace_back(Owner,
                          TxOp::update(Op.A,
                                       Old.project(Values.columns())));
        break;
      }
      [[maybe_unused]] size_t Removed = writable(Owner).remove(Old);
      assert(Removed == 1 && "matched tuple vanished during migration");
      Undo.emplace_back(Owner, TxOp::insert(Old));
      [[maybe_unused]] bool Ins = writable(Target).insert(Merged);
      assert(Ins && "conflict-free migration insert must change");
      Undo.emplace_back(Target, TxOp::remove(std::move(Merged)));
      break;
    }
    }
    if (Failed == Ops.size())
      DeriveRedo(Op, UndoStart);
  }

  if (Failed != Ops.size()) {
    // Every undo entry names a shard the forward pass just mutated, so
    // writable() is a no-op pin check here — no clone can occur.
    for (size_t J = Undo.size(); J != 0; --J)
      writable(Undo[J - 1].first).applyTxUndo(Undo[J - 1].second);
    assert(ScopeSize() == Before && "rollback did not restore the sizes");
    return TxResult{false, Failed, 0};
  }
  size_t After = ScopeSize();
  if (After > Before)
    Count.fetch_add(After - Before, std::memory_order_relaxed);
  else if (Before > After)
    Count.fetch_sub(Before - After, std::memory_order_relaxed);
  // The ticket is drawn while every touched stripe is still held (the
  // linearization point), so conflicting transactions — whose stripe
  // sets intersect — are ticketed in their serialization order. With a
  // durability hook armed, the draw and the hook call are one atomic
  // step under the hook mutex: even transactions on DISJOINT stripes
  // (which no lock orders) reach the log in ticket order.
  uint64_t Ticket;
  if (HookArmed && !Redo.empty()) {
    std::lock_guard<std::mutex> HookLock(HookMu);
    Ticket = TxTickets.fetch_add(1, std::memory_order_relaxed);
    Hook(Ticket, Redo);
  } else {
    Ticket = TxTickets.fetch_add(1, std::memory_order_relaxed);
  }
  return TxResult{true, 0, Ticket};
}

void ConcurrentRelation::withTxLocks(const TxLockPlan &Plan,
                                     function_ref<void()> Body) {
  if (Plan.AllShards) {
    AllShardsGuard Guard(Locks);
    EpochWriterFence Fence = fenceAll();
    Body();
    return;
  }
  ShardSetGuard Guard(Locks, Plan.Stripes);
  EpochWriterFence Fence(Gates.get(), Guard.stripes().data(),
                         Guard.stripes().size());
  Body();
}

std::vector<Tuple> ConcurrentRelation::query(const Tuple &Pattern,
                                             ColumnSet OutputCols) const {
  std::vector<Tuple> Result;
  std::unordered_set<Tuple> Seen;
  // One Seen set across every shard: a projection that drops the shard
  // column can surface the same result tuple from several shards, and
  // query's contract is set semantics.
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    Tuple Projected = F.toTuple(OutputCols);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
    return true;
  });
  return Result;
}

void ConcurrentRelation::scan(const Tuple &Pattern, ColumnSet OutputCols,
                              function_ref<bool(const Tuple &)> Fn) const {
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

void ConcurrentRelation::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  // NOTE: the callback runs inside a shard's epoch section (or under
  // its reader lock on the fallback path), so unlike the sequential
  // engine's reentrant scans it must not issue operations on this
  // ConcurrentRelation (a nested mutation deadlocks against its own
  // section or lock), and it must not block indefinitely (a stalled
  // section stalls writer fences).
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    readShard(S, [&] { Shards[S]->scanFrames(Pattern, OutputCols, Fn); });
    return;
  }
  bool Stopped = false;
  for (unsigned I = 0; I != Shards.size() && !Stopped; ++I)
    readShard(I, [&] {
      Shards[I]->scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
        if (!Fn(F)) {
          Stopped = true;
          return false;
        }
        return true;
      });
    });
}

void ConcurrentRelation::scanFramesParallel(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  // Routed patterns touch one shard: nothing to fan out.
  if (Router.routes(Pattern.columns())) {
    scanFrames(Pattern, OutputCols, Fn);
    return;
  }
  // One task per shard runs on the persistent pool, scans under that
  // shard's reader lock (NOT an epoch section: a task may block on
  // queue backpressure, which would stall writer fences), and pushes
  // chunks of copied frames into the bounded merge queue; the calling
  // thread drains it and runs the sink. Chunking matters: moving rows
  // one at a time through the queue made the mutex the bottleneck and
  // parallel scans slower than sequential ones. The copy is the price
  // of crossing threads — the borrowed-frame zero-allocation contract
  // still holds per shard, and frames over catalogs within
  // BindingFrame::InlineColumns copy without heap traffic.
  using Chunk = std::vector<BindingFrame>;
  constexpr size_t ChunkRows = 128;
  size_t CapChunks = ScanQueueCap / ChunkRows;
  if (CapChunks < 2)
    CapChunks = 2;
  BoundedQueue<Chunk> Queue(CapChunks, static_cast<unsigned>(Shards.size()));
  ScanPool::TaskGroup Tasks(ScanPool::global());
  for (unsigned I = 0; I != Shards.size(); ++I)
    Tasks.submit([&, I] {
      Chunk C;
      C.reserve(ChunkRows);
      bool Open = true;
      {
        auto Lock = Locks.shared(I);
        Shards[I]->scanFrames(Pattern, OutputCols,
                              [&](const BindingFrame &F) {
                                C.push_back(F);
                                if (C.size() == ChunkRows) {
                                  // push fails only after close(): the
                                  // consumer stopped, so stop scanning.
                                  Open = Queue.push(std::move(C));
                                  C.clear();
                                  C.reserve(ChunkRows);
                                }
                                return Open;
                              });
      }
      if (Open && !C.empty())
        Queue.push(std::move(C));
      Queue.producerDone();
    });
  Chunk Rows;
  bool Stopped = false;
  while (!Stopped && Queue.pop(Rows)) {
    for (const BindingFrame &F : Rows) {
      if (!Fn(F)) {
        Stopped = true;
        Queue.close();
        break;
      }
    }
  }
  // The group destructor would wait too; explicit for clarity. Tasks
  // reference Queue and Pattern, so they must finish before we return.
  Tasks.wait();
}

void ConcurrentRelation::scanParallel(const Tuple &Pattern,
                                      ColumnSet OutputCols,
                                      function_ref<bool(const Tuple &)> Fn) const {
  scanFramesParallel(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

bool ConcurrentRelation::contains(const Tuple &Pattern) const {
  bool Found = false;
  scanFrames(Pattern, ColumnSet(), [&](const BindingFrame &) {
    Found = true;
    return false;
  });
  return Found;
}

void ConcurrentRelation::clear() {
  AllShardsGuard Guard(Locks);
  EpochWriterFence Fence = fenceAll();
  for (unsigned S = 0; S != Shards.size(); ++S) {
    if (Pins[S]->load(std::memory_order_acquire) == 0) {
      Shards[S]->clear();
      continue;
    }
    // Pinned by a snapshot: no need for writable()'s O(shard) clone —
    // the post-clear state is empty, so freeze the original and swap
    // in a fresh instance directly (with a fresh pin generation).
    std::shared_ptr<SynthesizedRelation> Fresh = freshShard();
    Shards[S]->freezeArena();
    retireShardRef(std::move(Shards[S]));
    Shards[S] = std::move(Fresh);
    Pins[S] = std::make_shared<std::atomic<size_t>>(0);
  }
  Count.store(0, std::memory_order_relaxed);
}

ConcurrentRelation::Snapshot ConcurrentRelation::snapshot() const {
  // One brief all-stripe SHARED acquisition: writers (who hold their
  // stripe exclusively across mutation + counter update + ticket draw)
  // are excluded, so the N shard pointers, the ticket, and the size
  // are one consistent cut; concurrent readers are unaffected. Only
  // O(shards) pointer copies happen under the locks.
  AllShardsGuard Guard(Locks, AllShardsGuard::Shared);
  Snapshot Snap;
  Snap.Shards.assign(Shards.begin(), Shards.end());
  Snap.Pins.assign(Pins.begin(), Pins.end());
  // The only place a pin count goes 0 -> 1: writers are excluded by
  // the shared stripe hold, so a relaxed increment suffices — the
  // publication edge writers need comes from the handle's release
  // decrement at drop time (see writable()).
  for (const std::shared_ptr<std::atomic<size_t>> &P : Snap.Pins)
    P->fetch_add(1, std::memory_order_relaxed);
  Snap.Ticket = TxTickets.load(std::memory_order_relaxed) - 1;
  Snap.Count = Count.load(std::memory_order_relaxed);
  return Snap;
}

void ConcurrentRelation::Snapshot::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  bool Stopped = false;
  for (const std::shared_ptr<const SynthesizedRelation> &S : Shards) {
    if (Stopped)
      break;
    S->scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
      if (!Fn(F)) {
        Stopped = true;
        return false;
      }
      return true;
    });
  }
}

Relation ConcurrentRelation::Snapshot::toRelation() const {
  assert(valid() && "toRelation on an empty snapshot handle");
  Relation Result(Shards.front()->catalog().allColumns());
  for (const std::shared_ptr<const SynthesizedRelation> &S : Shards)
    Result = Relation::unionWith(Result, S->toRelation());
  return Result;
}

size_t ConcurrentRelation::Snapshot::liveInstances() const {
  size_t Live = 0;
  for (const std::shared_ptr<const SynthesizedRelation> &S : Shards)
    Live += S->liveInstances();
  return Live;
}

Relation ConcurrentRelation::toRelation() const {
  // The stripes are held only for snapshot()'s O(shards) pointer grab;
  // the O(n) extraction runs against the pinned handle, lock-free.
  return snapshot().toRelation();
}

size_t ConcurrentRelation::liveInstances() const {
  return snapshot().liveInstances();
}

void ConcurrentRelation::reoptimize() {
  AllShardsGuard Guard(Locks);
  // The fence also drains wait-free readers, who may hold pointers
  // into the plan caches this replaces; snapshot-pinned shards are
  // COW-cloned first (their plan caches are shared with the handles).
  EpochWriterFence Fence = fenceAll();
  for (unsigned S = 0; S != Shards.size(); ++S)
    writable(S).reoptimize();
}
