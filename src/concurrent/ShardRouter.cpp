//===- concurrent/ShardRouter.cpp - Hash routing across shards ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ShardRouter.h"

using namespace relc;

ColumnId ShardRouter::defaultShardColumn(const Decomposition &D) {
  // The root's outgoing edges are the containers every operation
  // probes first; their key columns are the "root key". A join at the
  // root contributes its edges in primitive tree order, so the first
  // edge is the left-most map — e.g. ns for the scheduler's
  // join(map(ns, ...), map(state, ...)) root.
  const std::vector<EdgeId> &RootEdges = D.outgoing(D.root());
  if (!RootEdges.empty()) {
    ColumnSet Key = D.edge(RootEdges.front()).KeyCols;
    assert(!Key.empty() && "map edge with empty key columns");
    return Key.first();
  }
  // Root is a bare unit: nothing to route by structurally; shard on
  // the first catalog column.
  assert(D.catalog().size() > 0 && "cannot shard a zero-column relation");
  return 0;
}
