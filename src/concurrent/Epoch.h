//===- concurrent/Epoch.h - Epoch-based read-side protection ------*- C++ -*-=//
//
// Epoch-based reclamation (EBR) in the classic three-epoch scheme
// (Fraser; McKenney's RCU recipes): readers enter a cheap read-side
// critical section by publishing "active at epoch E" into a
// cache-line-padded per-thread participant slot; writers either wait
// for the read-side sections that overlap a mutation (EpochWriterFence)
// or hand replaced nodes to a retire list that defers destruction until
// every participant has advanced at least two epochs past the retiring
// one.
//
// The read path does no shared read-modify-write: entering a section is
// one seq_cst store to the thread's own slot plus one seq_cst load of
// the writer gate. The store-load pairing with the writer's seq_cst
// gate-store / slot-load (a Dekker handshake) guarantees that in every
// execution either the writer observes the reader's section and waits
// for it to exit, or the reader observes the writer's gate and falls
// back to the stripe lock. Both outcomes carry a happens-before edge
// (release slot-store -> acquire slot-load, or the mutex handoff), so
// the protocol is clean under ThreadSanitizer as well as the memory
// model.
//
// Guard discipline (see docs/CONCURRENCY.md):
//  - EpochGuard sections must not block on locks, queue backpressure,
//    or I/O: a stalled section stalls every writer fence that covers
//    its tag.
//  - A thread must not mutate a relation from inside its own section
//    covering that relation's gate (the writer fence would wait for the
//    thread's own slot: self-deadlock). Nested *read* sections are
//    allowed; a nested section with a different tag widens the slot to
//    the wildcard so every fence waits for it.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_EPOCH_H
#define RELC_CONCURRENT_EPOCH_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace relc {

/// Per-shard writer gate. Readers poll `writerActive()` right after
/// entering their section; writers raise it (under the exclusive
/// stripe lock) for the duration of a mutation via EpochWriterFence.
/// alignas keeps gates of adjacent shards off each other's cache line.
struct alignas(64) EpochGate {
  std::atomic<uint32_t> Writer{0};

  /// seq_cst: the load half of the Dekker handshake with the writer's
  /// gate store (see the file comment).
  bool writerActive() const {
    return Writer.load(std::memory_order_seq_cst) != 0;
  }
};

/// Process-wide epoch state: the participant slot table, the global
/// epoch counter, and the retire lists. One instance per process
/// (`EpochManager::global()`); every ConcurrentRelation and every
/// generated facade shares it, which is what lets a single writer
/// fence drain readers of any relation by tag.
class EpochManager {
public:
  /// Participant slots are claimed per thread on first use and
  /// released (for reuse by later threads) at thread exit.
  static constexpr size_t MaxParticipants = 1024;

  static EpochManager &global();

  /// Sentinel tag: a section entered with the wildcard (or widened to
  /// it by mismatched nesting) is waited on by every writer fence.
  static const void *wildcardTag() { return &WildcardByte; }

  /// Enter/exit a read-side critical section on the calling thread.
  /// Tag identifies what the section reads (the address of the shard's
  /// EpochGate by convention); nullptr means wildcard. Sections nest.
  void enter(const void *Tag);
  void exit();

  /// True while the calling thread is inside a section (any depth).
  bool inSection() const;

  /// Wait until no participant is inside a read-side section that (a)
  /// was entered before this call and (b) has a tag matching one of
  /// Tags or the wildcard. NumTags == 0 waits for every active
  /// section. Callers must hold whatever lock prevents *new* matching
  /// sections from doing harm (the exclusive stripe lock: new sections
  /// see the raised gate and fall back to that same lock).
  void synchronize(const void *const *Tags, size_t NumTags);
  void synchronizeAll() { synchronize(nullptr, 0); }

  /// Defer `Del(P)` until every participant has moved two epochs past
  /// the current one. Safe to call from any thread, inside or outside
  /// a section. Periodically advances the epoch and reclaims as a side
  /// effect, so callers need no explicit collection loop.
  void retire(void *P, void (*Del)(void *));

  template <class T> static void deleteErased(void *P) {
    delete static_cast<T *>(P);
  }
  template <class T> void retireObject(T *P) {
    retire(P, &deleteErased<T>);
  }

  uint64_t globalEpoch() const {
    return GlobalEpoch.load(std::memory_order_acquire);
  }

  /// Advance the global epoch if every active participant has observed
  /// the current one. Returns true on advance.
  bool tryAdvance();

  /// Free every retired entry whose grace period has elapsed (calling
  /// thread's list plus orphans from exited threads). Returns the
  /// number destroyed.
  size_t reclaim();

  /// Test/shutdown helper: advance + reclaim until nothing reclaimable
  /// remains. With no active sections this frees everything retired.
  void flush();

  /// Approximate count of retired-but-not-yet-destroyed entries across
  /// all lists (test hook; racy by nature).
  size_t pendingRetired() const;

  /// Number of participant slots ever claimed (test hook).
  size_t participantHighWater() const {
    return HighWater.load(std::memory_order_acquire);
  }

  /// Per-thread state (slot index, nesting depth, retire list).
  /// Defined in Epoch.cpp; public only so the thread_local instance
  /// can be defined at namespace scope there.
  struct Handle;

private:
  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager &) = delete;
  EpochManager &operator=(const EpochManager &) = delete;

  struct alignas(64) Slot {
    /// (sequence << 1) | active. The sequence distinguishes successive
    /// sections so a fence can wait "for this section to end" without
    /// missing an exit-and-reenter.
    std::atomic<uint64_t> State{0};
    /// Epoch the section pinned at entry (valid while active).
    std::atomic<uint64_t> Epoch{0};
    /// Tag of the (outermost) section; wildcardTag() when widened.
    std::atomic<const void *> Tag{nullptr};
    /// Slot ownership: claimed by a live thread.
    std::atomic<uint32_t> Claimed{0};
  };

  struct Retired {
    void *Ptr;
    void (*Del)(void *);
    uint64_t Epoch;
    Retired *Next;
  };

  /// Per-thread retire list: FIFO so a parent retired before its
  /// children is also destroyed before them (NodeInstance destructors
  /// unlink child hooks, so child memory must outlive the parent's
  /// destructor call).
  struct RetireList {
    Retired *Head = nullptr;
    Retired **Tail = &Head;
    size_t Count = 0;
  };

  friend struct Handle;

  Handle &handle();
  Slot &claimSlot(Handle &H);
  void releaseSlot(Handle &H);
  size_t reclaimList(RetireList &L, uint64_t SafeEpoch);
  void adoptOrphan(RetireList &&L);

  static const char WildcardByte;

  Slot Slots[MaxParticipants];
  std::atomic<uint64_t> GlobalEpoch{2};
  std::atomic<size_t> HighWater{0};
  /// Orphaned retire lists from exited threads, spliced under a mutex
  /// in the .cpp (kept opaque here to avoid a <mutex> include in this
  /// widely-included header).
  void *OrphansOpaque = nullptr;
};

/// RAII read-side critical section on the global manager.
class EpochGuard {
public:
  explicit EpochGuard(const void *Tag = nullptr) {
    EpochManager::global().enter(Tag);
  }
  ~EpochGuard() { EpochManager::global().exit(); }
  EpochGuard(const EpochGuard &) = delete;
  EpochGuard &operator=(const EpochGuard &) = delete;
};

/// RAII writer-side fence over one or more gates. Construction raises
/// each gate (seq_cst) and then waits out every read-side section
/// tagged with one of the gates (or the wildcard); destruction lowers
/// the gates with release stores so the next wait-free reader observes
/// the mutation. Must be constructed with the corresponding exclusive
/// stripe lock(s) already held — the lock is what new readers fall
/// back to, and it is also what serializes fences on the same gate.
class EpochWriterFence {
public:
  static constexpr size_t MaxGates = 64;

  explicit EpochWriterFence(EpochGate &G) : EpochWriterFence(&G, OneIdx, 1) {}
  /// Gates[Idx[0..N)] — N <= MaxGates (facade shard counts are small).
  EpochWriterFence(EpochGate *Gates, const unsigned *Idx, size_t N);
  ~EpochWriterFence();
  EpochWriterFence(const EpochWriterFence &) = delete;
  EpochWriterFence &operator=(const EpochWriterFence &) = delete;

private:
  static const unsigned OneIdx[1];
  EpochGate *Raised[MaxGates];
  size_t NumRaised;
};

} // namespace relc

#endif // RELC_CONCURRENT_EPOCH_H
