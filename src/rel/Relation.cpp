//===- rel/Relation.cpp - Reference relation (spec oracle) -----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/Relation.h"

#include <algorithm>

using namespace relc;

void Relation::fixColumns(ColumnSet C) {
  if (!HaveCols) {
    Cols = C;
    HaveCols = true;
    return;
  }
  assert(Cols == C && "all tuples of a relation share one column set");
}

void Relation::insert(const Tuple &T) {
  fixColumns(T.columns());
  Tuples.insert(T);
}

size_t Relation::remove(const Tuple &S) {
  size_t Removed = 0;
  for (auto It = Tuples.begin(); It != Tuples.end();) {
    if (It->extends(S)) {
      It = Tuples.erase(It);
      ++Removed;
    } else {
      ++It;
    }
  }
  return Removed;
}

size_t Relation::update(const Tuple &S, const Tuple &U) {
  std::vector<Tuple> Changed;
  size_t Updated = 0;
  for (auto It = Tuples.begin(); It != Tuples.end();) {
    if (It->extends(S)) {
      Changed.push_back(It->merge(U));
      It = Tuples.erase(It);
      ++Updated;
    } else {
      ++It;
    }
  }
  for (Tuple &T : Changed)
    Tuples.insert(std::move(T));
  return Updated;
}

std::vector<Tuple> Relation::query(const Tuple &S, ColumnSet C) const {
  std::unordered_set<Tuple> Seen;
  std::vector<Tuple> Result;
  for (const Tuple &T : Tuples) {
    if (!T.extends(S))
      continue;
    Tuple Projected = T.project(C);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
  }
  return Result;
}

std::vector<Tuple> Relation::tuples() const {
  return std::vector<Tuple>(Tuples.begin(), Tuples.end());
}

bool Relation::satisfies(const FuncDeps &Deps) const {
  // Quadratic check; the oracle is only used on test-sized relations.
  std::vector<Tuple> All = tuples();
  for (const FuncDep &Dep : Deps.deps())
    for (size_t I = 0; I != All.size(); ++I)
      for (size_t J = I + 1; J != All.size(); ++J) {
        const Tuple &A = All[I];
        const Tuple &B = All[J];
        if (A.project(Dep.Lhs) == B.project(Dep.Lhs) &&
            A.project(Dep.Rhs) != B.project(Dep.Rhs))
          return false;
      }
  return true;
}

bool Relation::insertPreservesFds(const Tuple &T,
                                  const FuncDeps &Deps) const {
  for (const FuncDep &Dep : Deps.deps()) {
    Tuple Key = T.project(Dep.Lhs);
    Tuple Val = T.project(Dep.Rhs);
    for (const Tuple &Existing : Tuples)
      if (Existing.project(Dep.Lhs) == Key &&
          Existing.project(Dep.Rhs) != Val)
        return false;
  }
  return true;
}

Relation Relation::project(ColumnSet C) const {
  Relation Result(Cols.intersect(C));
  for (const Tuple &T : Tuples)
    Result.insert(T.project(Cols.intersect(C)));
  return Result;
}

Relation Relation::join(const Relation &R1, const Relation &R2) {
  Relation Result(R1.Cols.unionWith(R2.Cols));
  for (const Tuple &A : R1.Tuples)
    for (const Tuple &B : R2.Tuples)
      if (A.matches(B))
        Result.insert(A.merge(B));
  return Result;
}

Relation Relation::unionWith(const Relation &R1, const Relation &R2) {
  if (R1.empty() && !R1.HaveCols)
    return R2;
  if (R2.empty() && !R2.HaveCols)
    return R1;
  Relation Result = R1;
  for (const Tuple &T : R2.Tuples)
    Result.insert(T);
  return Result;
}

bool Relation::operator==(const Relation &Other) const {
  if (Tuples.size() != Other.Tuples.size())
    return false;
  for (const Tuple &T : Tuples)
    if (!Other.contains(T))
      return false;
  return true;
}

std::string Relation::str(const Catalog &Cat) const {
  std::vector<Tuple> All = tuples();
  std::sort(All.begin(), All.end());
  std::string Result = "{";
  bool NeedComma = false;
  for (const Tuple &T : All) {
    if (NeedComma)
      Result += ", ";
    Result += T.str(Cat);
    NeedComma = true;
  }
  Result += "}";
  return Result;
}
