//===- rel/Tuple.cpp - Partial tuples --------------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/Tuple.h"

#include "support/Hashing.h"

using namespace relc;

void Tuple::set(ColumnId Id, Value V) {
  if (has(Id)) {
    Vals[rank(Id)] = V;
    return;
  }
  unsigned Idx = rank(Id);
  Cols.insert(Id);
  Vals.insert(Vals.begin() + Idx, V);
}

void Tuple::unset(ColumnId Id) {
  if (!has(Id))
    return;
  unsigned Idx = rank(Id);
  Vals.erase(Vals.begin() + Idx);
  Cols.erase(Id);
}

bool Tuple::extends(const Tuple &S) const {
  if (!S.Cols.subsetOf(Cols))
    return false;
  for (ColumnId Id : S.Cols)
    if (!(get(Id) == S.get(Id)))
      return false;
  return true;
}

bool Tuple::matches(const Tuple &S) const {
  ColumnSet Common = Cols.intersect(S.Cols);
  for (ColumnId Id : Common)
    if (!(get(Id) == S.get(Id)))
      return false;
  return true;
}

Tuple Tuple::project(ColumnSet C) const {
  assert(C.subsetOf(Cols) && "projection columns must be bound");
  return projectIfPresent(C);
}

Tuple Tuple::projectIfPresent(ColumnSet C) const {
  Tuple Result;
  Result.Cols = Cols.intersect(C);
  forEach([&](ColumnId Id, const Value &V) {
    if (Result.Cols.contains(Id))
      Result.Vals.push_back(V);
  });
  return Result;
}

Tuple Tuple::merge(const Tuple &U) const {
  Tuple Result = *this;
  U.forEach([&](ColumnId Id, const Value &V) { Result.set(Id, V); });
  return Result;
}

bool Tuple::operator<(const Tuple &Other) const {
  if (Cols != Other.Cols)
    return Cols < Other.Cols;
  return Vals < Other.Vals;
}

size_t Tuple::hash() const {
  size_t Seed = std::hash<uint64_t>()(Cols.mask());
  for (const Value &V : Vals)
    Seed = hashCombine(Seed, V.hash());
  return Seed;
}

std::string Tuple::str(const Catalog &Cat) const {
  std::string Result = "<";
  bool NeedComma = false;
  forEach([&](ColumnId Id, const Value &V) {
    if (NeedComma)
      Result += ", ";
    Result += Cat.name(Id);
    Result += ": ";
    Result += V.str();
    NeedComma = true;
  });
  Result += ">";
  return Result;
}

std::string Tuple::valuesStr() const {
  std::string Result = "(";
  bool NeedComma = false;
  for (const Value &V : Vals) {
    if (NeedComma)
      Result += ", ";
    Result += V.str();
    NeedComma = true;
  }
  Result += ")";
  return Result;
}
