//===- rel/FunctionalDeps.cpp - Functional dependency engine ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/FunctionalDeps.h"

using namespace relc;

ColumnSet FuncDeps::closure(ColumnSet Start) const {
  ColumnSet Result = Start;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FuncDep &Dep : Deps) {
      if (!Dep.Lhs.subsetOf(Result) || Dep.Rhs.subsetOf(Result))
        continue;
      Result = Result.unionWith(Dep.Rhs);
      Changed = true;
    }
  }
  return Result;
}

std::string FuncDeps::str(const Catalog &Cat) const {
  std::string Result;
  bool NeedSep = false;
  for (const FuncDep &Dep : Deps) {
    if (NeedSep)
      Result += "; ";
    Result += Cat.setToString(Dep.Lhs);
    Result += " -> ";
    Result += Cat.setToString(Dep.Rhs);
    NeedSep = true;
  }
  return Result;
}
