//===- rel/Tuple.h - Partial tuples ------------------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuples per Section 2 of the paper: a mapping from a set of columns to
/// values. Tuples may be partial (query/remove/update patterns bind only
/// some columns). Values are stored densely in increasing ColumnId order.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_TUPLE_H
#define RELC_REL_TUPLE_H

#include "rel/Catalog.h"
#include "rel/ColumnSet.h"
#include "support/Bits.h"
#include "support/SmallVector.h"
#include "support/Value.h"

#include <string>
#include <type_traits>

namespace relc {

/// A (possibly partial) tuple: a valuation for the columns in columns().
class Tuple {
public:
  /// The empty tuple 〈〉.
  Tuple() = default;

  ColumnSet columns() const { return Cols; }
  bool empty() const { return Cols.empty(); }
  unsigned size() const { return Cols.size(); }

  bool has(ColumnId Id) const { return Cols.contains(Id); }

  /// \returns the value of column \p Id; asserts that it is bound.
  const Value &get(ColumnId Id) const {
    assert(has(Id) && "column not bound in tuple");
    return Vals[rank(Id)];
  }

  /// The dense value array, ordered by increasing ColumnId (the
  /// borrowed-view machinery in TupleView indexes this directly).
  const Value *data() const { return Vals.begin(); }

  /// Calls \p Fn(ColumnId, const Value &) per bound column in
  /// increasing column order — one pass, no per-column rank
  /// recomputation. \p Fn may return void, or bool (false stops the
  /// iteration early). \returns false if stopped.
  template <typename FnT> bool forEach(FnT &&Fn) const {
    unsigned Idx = 0;
    for (ColumnId Id : Cols) {
      if constexpr (std::is_void_v<
                        std::invoke_result_t<FnT &, ColumnId, const Value &>>) {
        Fn(Id, Vals[Idx]);
      } else {
        if (!Fn(Id, Vals[Idx]))
          return false;
      }
      ++Idx;
    }
    return true;
  }

  /// Binds or overwrites column \p Id with \p V.
  void set(ColumnId Id, Value V);

  /// Drops column \p Id if bound.
  void unset(ColumnId Id);

  /// True if this tuple extends \p S (written t ⊇ s): every column of
  /// \p S is bound here with an equal value.
  bool extends(const Tuple &S) const;

  /// True if the tuples agree on all common columns (written t ∼ s).
  bool matches(const Tuple &S) const;

  /// Projection π_C; requires C ⊆ columns().
  Tuple project(ColumnSet C) const;

  /// Projection onto columns() ∩ C (no requirement that C be bound).
  Tuple projectIfPresent(ColumnSet C) const;

  /// Merge s ◁ u per the paper: values from \p U win wherever both bind
  /// a column.
  Tuple merge(const Tuple &U) const;

  bool operator==(const Tuple &Other) const {
    return Cols == Other.Cols && Vals == Other.Vals;
  }
  bool operator!=(const Tuple &Other) const { return !(*this == Other); }

  /// Arbitrary-but-total order usable as a container key (column mask
  /// first, then values lexicographically).
  bool operator<(const Tuple &Other) const;

  size_t hash() const;

  /// Renders "〈ns: 1, pid: 2〉" with names from \p Cat.
  std::string str(const Catalog &Cat) const;

  /// Renders values only, e.g. "(1, 2)".
  std::string valuesStr() const;

private:
  /// Index of \p Id within Vals: the number of bound columns below it.
  unsigned rank(ColumnId Id) const {
    uint64_t Below = Cols.mask() & ((uint64_t(1) << Id) - 1);
    return bits::popcount(Below);
  }

  ColumnSet Cols;
  SmallVector<Value, 4> Vals;
};

/// Convenience builder for tests/examples:
///   TupleBuilder(Cat).set("ns", 1).set("name", "foo").build()
class TupleBuilder {
public:
  explicit TupleBuilder(const Catalog &Cat) : Cat(Cat) {}

  TupleBuilder &set(std::string_view Col, int64_t V) {
    T.set(Cat.get(Col), Value::ofInt(V));
    return *this;
  }
  TupleBuilder &set(std::string_view Col, std::string_view V) {
    T.set(Cat.get(Col), Value::ofString(V));
    return *this;
  }
  TupleBuilder &set(std::string_view Col, Value V) {
    T.set(Cat.get(Col), V);
    return *this;
  }

  Tuple build() const { return T; }

private:
  const Catalog &Cat;
  Tuple T;
};

} // namespace relc

template <> struct std::hash<relc::Tuple> {
  size_t operator()(const relc::Tuple &T) const { return T.hash(); }
};

#endif // RELC_REL_TUPLE_H
