//===- rel/Catalog.h - Column name catalog ----------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Catalog interns column names for one relational specification,
/// mapping each name to a dense ColumnId usable in ColumnSet masks.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_CATALOG_H
#define RELC_REL_CATALOG_H

#include "rel/ColumnSet.h"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace relc {

/// Maps column names to dense ids for one relation. Columns are added
/// once, up-front; lookups after that are read-only.
class Catalog {
public:
  /// Registers a new column; asserts on duplicates and on exceeding the
  /// 64-column limit.
  ColumnId add(std::string Name);

  /// \returns the id for \p Name, or std::nullopt if unknown.
  std::optional<ColumnId> find(std::string_view Name) const;

  /// \returns the id for \p Name; asserts that it exists.
  ColumnId get(std::string_view Name) const;

  const std::string &name(ColumnId Id) const;

  unsigned size() const { return static_cast<unsigned>(Names.size()); }

  /// The set of all registered columns.
  ColumnSet allColumns() const { return ColumnSet::allOf(size()); }

  /// Builds a set from names, e.g. parseSet({"ns", "pid"}).
  ColumnSet makeSet(std::initializer_list<std::string_view> ColNames) const;

  /// Parses a comma-separated list of column names ("ns, pid"); an empty
  /// or all-whitespace string yields the empty set. Asserts on unknown
  /// names.
  ColumnSet parseSet(std::string_view Text) const;

  /// Renders a set as "{a, b, c}" using this catalog's names.
  std::string setToString(ColumnSet Set) const;

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, ColumnId> ByName;
};

} // namespace relc

#endif // RELC_REL_CATALOG_H
