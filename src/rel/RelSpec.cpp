//===- rel/RelSpec.cpp - Relational specifications -------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/RelSpec.h"

using namespace relc;

RelSpecRef
RelSpec::make(std::string Name, std::vector<std::string> Columns,
              std::vector<std::pair<std::string, std::string>> Fds) {
  auto Spec = std::shared_ptr<RelSpec>(new RelSpec());
  Spec->SpecName = std::move(Name);
  for (std::string &Col : Columns)
    Spec->Cat.add(std::move(Col));
  for (const auto &[Lhs, Rhs] : Fds)
    Spec->Deps.add(Spec->Cat.parseSet(Lhs), Spec->Cat.parseSet(Rhs));
  return Spec;
}

std::string RelSpec::str() const {
  std::string Result = SpecName + "(";
  for (unsigned I = 0; I != Cat.size(); ++I) {
    if (I)
      Result += ", ";
    Result += Cat.name(I);
  }
  Result += ")";
  if (!Deps.empty()) {
    Result += " with ";
    Result += Deps.str(Cat);
  }
  return Result;
}
