//===- rel/ColumnSet.h - Sets of column ids ---------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Columns are interned per Catalog as small integers; a ColumnSet is a
/// 64-bit mask over them. Every judgment in the paper (functional
/// dependencies, adequacy, query validity, cuts) is a computation over
/// column sets, so these need to be cheap.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_COLUMNSET_H
#define RELC_REL_COLUMNSET_H

#include "support/Bits.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <initializer_list>

namespace relc {

/// Identifies a column within one Catalog. Dense, starting at 0.
using ColumnId = unsigned;

/// An immutable-friendly set of ColumnIds backed by a 64-bit mask.
/// Relations are limited to 64 columns, far above anything realistic.
class ColumnSet {
public:
  ColumnSet() = default;

  ColumnSet(std::initializer_list<ColumnId> Ids) {
    for (ColumnId Id : Ids)
      insert(Id);
  }

  static ColumnSet single(ColumnId Id) { return ColumnSet({Id}); }

  /// The set {0, 1, ..., Arity-1}.
  static ColumnSet allOf(unsigned Arity) {
    assert(Arity <= 64 && "catalogs are limited to 64 columns");
    ColumnSet Result;
    Result.Mask = Arity == 64 ? ~uint64_t(0) : ((uint64_t(1) << Arity) - 1);
    return Result;
  }

  static ColumnSet fromMask(uint64_t Mask) {
    ColumnSet Result;
    Result.Mask = Mask;
    return Result;
  }

  uint64_t mask() const { return Mask; }
  bool empty() const { return Mask == 0; }
  unsigned size() const { return bits::popcount(Mask); }

  bool contains(ColumnId Id) const {
    assert(Id < 64 && "column id out of range");
    return (Mask >> Id) & 1;
  }

  void insert(ColumnId Id) {
    assert(Id < 64 && "column id out of range");
    Mask |= uint64_t(1) << Id;
  }

  void erase(ColumnId Id) {
    assert(Id < 64 && "column id out of range");
    Mask &= ~(uint64_t(1) << Id);
  }

  bool subsetOf(ColumnSet Other) const { return (Mask & ~Other.Mask) == 0; }
  bool intersects(ColumnSet Other) const { return (Mask & Other.Mask) != 0; }

  ColumnSet unionWith(ColumnSet Other) const {
    return fromMask(Mask | Other.Mask);
  }
  ColumnSet intersect(ColumnSet Other) const {
    return fromMask(Mask & Other.Mask);
  }
  ColumnSet minus(ColumnSet Other) const {
    return fromMask(Mask & ~Other.Mask);
  }
  /// Symmetric difference, written ⊖ in the paper's (AJOIN) rule.
  ColumnSet symmetricDifference(ColumnSet Other) const {
    return fromMask(Mask ^ Other.Mask);
  }

  /// The smallest ColumnId in the set; the set must be non-empty.
  ColumnId first() const {
    assert(!empty() && "first() on empty ColumnSet");
    return static_cast<ColumnId>(bits::countrZero(Mask));
  }

  bool operator==(ColumnSet Other) const { return Mask == Other.Mask; }
  bool operator!=(ColumnSet Other) const { return Mask != Other.Mask; }
  bool operator<(ColumnSet Other) const { return Mask < Other.Mask; }

  /// Iterates ColumnIds in increasing order.
  class iterator {
  public:
    explicit iterator(uint64_t Mask) : Rest(Mask) {}
    ColumnId operator*() const {
      return static_cast<ColumnId>(bits::countrZero(Rest));
    }
    iterator &operator++() {
      Rest &= Rest - 1;
      return *this;
    }
    bool operator!=(const iterator &Other) const { return Rest != Other.Rest; }
    bool operator==(const iterator &Other) const { return Rest == Other.Rest; }

  private:
    uint64_t Rest;
  };

  iterator begin() const { return iterator(Mask); }
  iterator end() const { return iterator(0); }

private:
  uint64_t Mask = 0;
};

} // namespace relc

template <> struct std::hash<relc::ColumnSet> {
  size_t operator()(relc::ColumnSet S) const {
    return std::hash<uint64_t>()(S.mask());
  }
};

#endif // RELC_REL_COLUMNSET_H
