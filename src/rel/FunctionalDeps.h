//===- rel/FunctionalDeps.h - Functional dependency engine ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional dependencies ∆ and the entailment judgment ∆ ⊢fd C1 → C2
/// (Section 2). Entailment is decided with the standard attribute-set
/// closure algorithm (sound and complete w.r.t. Armstrong's axioms).
/// Adequacy (Fig. 6), query validity (Fig. 8) and cut computation
/// (Section 4.5) all reduce to this judgment.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_FUNCTIONALDEPS_H
#define RELC_REL_FUNCTIONALDEPS_H

#include "rel/Catalog.h"
#include "rel/ColumnSet.h"

#include <string>
#include <vector>

namespace relc {

/// One functional dependency Lhs → Rhs.
struct FuncDep {
  ColumnSet Lhs;
  ColumnSet Rhs;

  bool operator==(const FuncDep &Other) const {
    return Lhs == Other.Lhs && Rhs == Other.Rhs;
  }
};

/// A set ∆ of functional dependencies with closure-based entailment.
class FuncDeps {
public:
  FuncDeps() = default;

  void add(FuncDep Dep) { Deps.push_back(Dep); }
  void add(ColumnSet Lhs, ColumnSet Rhs) { Deps.push_back({Lhs, Rhs}); }

  const std::vector<FuncDep> &deps() const { return Deps; }
  bool empty() const { return Deps.empty(); }

  /// The attribute closure of \p Start under ∆: the largest C with
  /// ∆ ⊢fd Start → C.
  ColumnSet closure(ColumnSet Start) const;

  /// Decides ∆ ⊢fd Lhs → Rhs.
  bool implies(ColumnSet Lhs, ColumnSet Rhs) const {
    return Rhs.subsetOf(closure(Lhs));
  }

  /// True if \p Key determines all of \p AllColumns (i.e. is a key).
  bool isKey(ColumnSet Key, ColumnSet AllColumns) const {
    return implies(Key, AllColumns);
  }

  std::string str(const Catalog &Cat) const;

private:
  std::vector<FuncDep> Deps;
};

} // namespace relc

#endif // RELC_REL_FUNCTIONALDEPS_H
