//===- rel/TupleView.h - Borrowed key views ---------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning view of a subset of an existing tuple's (or binding
/// frame's) columns, hash- and order-compatible with the materialized
/// projection. Map probes on the query/mutation hot path pass views
/// instead of Tuple::project results, so heterogeneous lookup/erase
/// never copies values or touches the heap; a Tuple is materialized
/// only when an entry is actually stored.
///
/// The source layout is described uniformly: a dense Value array
/// ordered by increasing ColumnId plus the 64-bit mask of the columns
/// that array covers. A Tuple is exactly that; a BindingFrame is the
/// degenerate case where the array covers every catalog column.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_TUPLEVIEW_H
#define RELC_REL_TUPLEVIEW_H

#include "rel/Tuple.h"

namespace relc {

/// Borrowed view of columns \p Cols within a source valuation. The
/// source must outlive the view (views live for the duration of one
/// container probe).
class TupleView {
public:
  /// Views \p C within \p T; requires C ⊆ T.columns().
  TupleView(const Tuple &T, ColumnSet C)
      : Vals(T.data()), SrcMask(T.columns().mask()), Cols(C) {
    assert(C.subsetOf(T.columns()) && "view columns must be bound");
  }

  /// Views \p C within a raw dense array covering \p SrcMask (used by
  /// BindingFrame, whose register file covers the whole catalog).
  TupleView(const Value *SrcVals, uint64_t SrcMask, ColumnSet C)
      : Vals(SrcVals), SrcMask(SrcMask), Cols(C) {
    assert(C.subsetOf(ColumnSet::fromMask(SrcMask)) &&
           "view columns must lie within the source mask");
  }

  ColumnSet columns() const { return Cols; }
  bool empty() const { return Cols.empty(); }
  unsigned size() const { return Cols.size(); }
  bool has(ColumnId Id) const { return Cols.contains(Id); }

  const Value &get(ColumnId Id) const {
    assert(has(Id) && "column not in view");
    return Vals[bits::popcount(SrcMask & ((uint64_t(1) << Id) - 1))];
  }

  /// Copies the viewed columns into an owning Tuple (the insert
  /// boundary). Equal to the source's project onto columns().
  Tuple materialize() const {
    Tuple T;
    for (ColumnId Id : Cols)
      T.set(Id, get(Id));
    return T;
  }

  /// Hash-compatible with Tuple: materialize().hash() == hash().
  size_t hash() const {
    size_t Seed = std::hash<uint64_t>()(Cols.mask());
    for (ColumnId Id : Cols)
      Seed = hashCombine(Seed, get(Id).hash());
    return Seed;
  }

  bool equals(const Tuple &T) const {
    if (T.columns() != Cols)
      return false;
    return T.forEach(
        [&](ColumnId Id, const Value &V) { return get(Id) == V; });
  }

  bool equals(const TupleView &O) const {
    if (O.Cols != Cols)
      return false;
    for (ColumnId Id : Cols)
      if (!(get(Id) == O.get(Id)))
        return false;
    return true;
  }

private:
  const Value *Vals;
  uint64_t SrcMask;
  ColumnSet Cols;
};

inline bool operator==(const TupleView &A, const Tuple &B) {
  return A.equals(B);
}
inline bool operator==(const Tuple &A, const TupleView &B) {
  return B.equals(A);
}
inline bool operator==(const TupleView &A, const TupleView &B) {
  return A.equals(B);
}

/// The same arbitrary-but-total order as Tuple::operator< (column mask
/// first, then values in increasing column order), so ordered
/// containers can probe with a view in place of the projected key.
/// One definition serves both operand orders — Tuple and TupleView
/// share the columns()/get() interface.
template <typename LhsT, typename RhsT>
bool tupleOrderedBefore(const LhsT &A, const RhsT &B) {
  if (A.columns() != B.columns())
    return A.columns() < B.columns();
  for (ColumnId Id : A.columns()) {
    const Value &Va = A.get(Id);
    const Value &Vb = B.get(Id);
    if (Va < Vb)
      return true;
    if (Vb < Va)
      return false;
  }
  return false;
}

inline bool operator<(const TupleView &A, const Tuple &B) {
  return tupleOrderedBefore(A, B);
}

inline bool operator<(const Tuple &A, const TupleView &B) {
  return tupleOrderedBefore(A, B);
}

} // namespace relc

#endif // RELC_REL_TUPLEVIEW_H
