//===- rel/RelSpec.h - Relational specifications ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A relational specification per Section 2: a set of column names C and
/// functional dependencies ∆. This is the contract between a data
/// structure client and the synthesized representation.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_RELSPEC_H
#define RELC_REL_RELSPEC_H

#include "rel/Catalog.h"
#include "rel/FunctionalDeps.h"

#include <memory>
#include <string>
#include <vector>

namespace relc {

class RelSpec;

/// Shared immutable handle; decompositions, instances and plans all keep
/// one so that column ids stay meaningful.
using RelSpecRef = std::shared_ptr<const RelSpec>;

/// An immutable relational specification 〈C, ∆〉.
class RelSpec {
public:
  /// Builds a spec from column names and FDs written as name lists, e.g.
  ///   RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
  ///                 {{"ns, pid", "state, cpu"}});
  static RelSpecRef
  make(std::string Name, std::vector<std::string> Columns,
       std::vector<std::pair<std::string, std::string>> Fds = {});

  const std::string &name() const { return SpecName; }
  const Catalog &catalog() const { return Cat; }
  const FuncDeps &fds() const { return Deps; }

  /// All columns of the relation.
  ColumnSet columns() const { return Cat.allColumns(); }

  unsigned arity() const { return Cat.size(); }

  /// Renders "name(c1, c2, ...; fd1; fd2)" for diagnostics.
  std::string str() const;

private:
  RelSpec() = default;

  std::string SpecName;
  Catalog Cat;
  FuncDeps Deps;
};

} // namespace relc

#endif // RELC_REL_RELSPEC_H
