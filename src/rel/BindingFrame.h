//===- rel/BindingFrame.h - Dense binding register file ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-time binding state of one query: a dense Value
/// register per catalog column plus a ColumnSet mask of which registers
/// are bound. The plan interpreter threads ONE mutable frame through
/// the whole plan instead of materializing a merged Tuple per step —
/// binding a column is a store + bit set, and undoing everything a
/// subplan bound is restoring the saved mask (stale register values
/// become unreachable; they are never cleared).
///
/// Frames are stack-friendly: for catalogs of up to
/// BindingFrame::InlineColumns columns (every system in this repo) a
/// frame performs no heap allocation at all.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_BINDINGFRAME_H
#define RELC_REL_BINDINGFRAME_H

#include "rel/Tuple.h"
#include "rel/TupleView.h"

namespace relc {

class BindingFrame {
public:
  /// Catalogs at most this wide never heap-allocate a frame.
  static constexpr unsigned InlineColumns = 8;

  BindingFrame() = default;

  /// A frame with registers for columns 0..NumColumns-1, all unbound.
  explicit BindingFrame(unsigned NumColumns) { reset(NumColumns); }

  /// Re-sizes to \p NumColumns registers and unbinds everything.
  void reset(unsigned NumColumns) {
    assert(NumColumns <= 64 && "catalogs are limited to 64 columns");
    Regs.resize(NumColumns);
    Mask = ColumnSet();
  }

  unsigned numColumns() const { return static_cast<unsigned>(Regs.size()); }

  /// The currently-bound columns.
  ColumnSet bound() const { return Mask; }
  bool has(ColumnId Id) const { return Mask.contains(Id); }

  const Value &get(ColumnId Id) const {
    assert(has(Id) && "column not bound in frame");
    return Regs[Id];
  }

  /// Binds or overwrites register \p Id. O(1).
  void bind(ColumnId Id, const Value &V) {
    assert(Id < Regs.size() && "column beyond the frame's registers");
    Regs[Id] = V;
    Mask.insert(Id);
  }

  /// Unbinds register \p Id (the value goes stale in place). O(1).
  void unbind(ColumnId Id) { Mask.erase(Id); }

  /// Binds every column of \p T (values from \p T win).
  void bind(const Tuple &T) {
    T.forEach([&](ColumnId Id, const Value &V) { bind(Id, V); });
  }

  /// Cheap checkpoint of the bound mask. Values bound after a save
  /// stay in their registers, but restore() makes them unreachable —
  /// this is what makes per-plan-step backtracking O(1).
  ColumnSet save() const { return Mask; }
  void restore(ColumnSet Saved) { Mask = Saved; }

  /// True if \p T agrees with the frame on every commonly-bound column
  /// (the frame analogue of Tuple::matches).
  bool matches(const Tuple &T) const {
    return T.forEach([&](ColumnId Id, const Value &V) {
      return !has(Id) || Regs[Id] == V;
    });
  }

  /// Filters and extends in one pass: if \p T agrees on all commonly-
  /// bound columns, binds T's remaining columns and returns true.
  /// On mismatch returns false; columns bound before the mismatch stay
  /// bound — callers bracket the call with save()/restore(), which
  /// undoes them wholesale.
  bool matchAndBind(const Tuple &T) {
    return T.forEach([&](ColumnId Id, const Value &V) {
      if (has(Id))
        return Regs[Id] == V;
      bind(Id, V);
      return true;
    });
  }

  /// Borrowed view of bound columns \p C (for heterogeneous map
  /// probes); requires C ⊆ bound().
  TupleView view(ColumnSet C) const {
    assert(C.subsetOf(Mask) && "view of unbound frame columns");
    return TupleView(Regs.begin(), denseMask(), C);
  }

  /// Materializes the projection onto \p C; requires C ⊆ bound().
  Tuple toTuple(ColumnSet C) const {
    assert(C.subsetOf(Mask) && "projection of unbound frame columns");
    Tuple T;
    for (ColumnId Id : C)
      T.set(Id, Regs[Id]);
    return T;
  }

private:
  /// The mask the register array covers: every catalog column.
  uint64_t denseMask() const {
    return ColumnSet::allOf(numColumns()).mask();
  }

  SmallVector<Value, InlineColumns> Regs;
  ColumnSet Mask;
};

} // namespace relc

#endif // RELC_REL_BINDINGFRAME_H
