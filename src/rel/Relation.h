//===- rel/Relation.h - Reference relation (spec oracle) --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable specification of Section 2: a relation as a plain set
/// of tuples with the five operations (empty/insert/remove/update/query)
/// and the relational algebra used by the abstraction function α. The
/// synthesized representations are tested against this oracle.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_REL_RELATION_H
#define RELC_REL_RELATION_H

#include "rel/FunctionalDeps.h"
#include "rel/Tuple.h"

#include <unordered_set>
#include <vector>

namespace relc {

/// A set of tuples over identical columns. Insertion order is not
/// semantically meaningful; comparisons are set comparisons.
class Relation {
public:
  /// An empty relation with no columns fixed yet (columns are set by the
  /// first insertion or by the explicit constructor).
  Relation() = default;

  /// An empty relation over \p Columns.
  explicit Relation(ColumnSet Columns) : Cols(Columns), HaveCols(true) {}

  ColumnSet columns() const { return Cols; }
  size_t size() const { return Tuples.size(); }
  bool empty() const { return Tuples.empty(); }

  bool contains(const Tuple &T) const { return Tuples.count(T) != 0; }

  /// insert r t — set union with {t}. \p T must be a full tuple.
  void insert(const Tuple &T);

  /// remove r s — removes all tuples extending \p S.
  /// \returns the number of tuples removed.
  size_t remove(const Tuple &S);

  /// update r s u — merges \p U into every tuple extending \p S.
  /// \returns the number of tuples updated.
  size_t update(const Tuple &S, const Tuple &U);

  /// query r s C — the projection onto \p C of tuples extending \p S.
  /// The result is a set (duplicates collapse).
  std::vector<Tuple> query(const Tuple &S, ColumnSet C) const;

  /// All tuples, in unspecified order.
  std::vector<Tuple> tuples() const;

  /// True if the FDs ∆ hold on this relation (r |=fd ∆).
  bool satisfies(const FuncDeps &Deps) const;

  /// True if inserting \p T would keep \p Deps satisfied.
  bool insertPreservesFds(const Tuple &T, const FuncDeps &Deps) const;

  //===--------------------------------------------------------------------===
  // Relational algebra (used by the abstraction function and tests).
  //===--------------------------------------------------------------------===

  /// π_C r.
  Relation project(ColumnSet C) const;

  /// r1 ⋈ r2 (natural join).
  static Relation join(const Relation &R1, const Relation &R2);

  /// r1 ∪ r2; columns must agree (or either side may be columnless-empty).
  static Relation unionWith(const Relation &R1, const Relation &R2);

  bool operator==(const Relation &Other) const;
  bool operator!=(const Relation &Other) const { return !(*this == Other); }

  std::string str(const Catalog &Cat) const;

private:
  void fixColumns(ColumnSet C);

  ColumnSet Cols;
  bool HaveCols = false;
  std::unordered_set<Tuple> Tuples;
};

} // namespace relc

#endif // RELC_REL_RELATION_H
