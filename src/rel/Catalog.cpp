//===- rel/Catalog.cpp - Column name catalog ------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/Catalog.h"

#include <cassert>

using namespace relc;

ColumnId Catalog::add(std::string Name) {
  assert(Names.size() < 64 && "catalogs are limited to 64 columns");
  assert(ByName.find(Name) == ByName.end() && "duplicate column name");
  ColumnId Id = static_cast<ColumnId>(Names.size());
  ByName.emplace(Name, Id);
  Names.push_back(std::move(Name));
  return Id;
}

std::optional<ColumnId> Catalog::find(std::string_view Name) const {
  auto It = ByName.find(std::string(Name));
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

ColumnId Catalog::get(std::string_view Name) const {
  std::optional<ColumnId> Id = find(Name);
  assert(Id && "unknown column name");
  return *Id;
}

const std::string &Catalog::name(ColumnId Id) const {
  assert(Id < Names.size() && "column id out of range");
  return Names[Id];
}

ColumnSet
Catalog::makeSet(std::initializer_list<std::string_view> ColNames) const {
  ColumnSet Result;
  for (std::string_view Name : ColNames)
    Result.insert(get(Name));
  return Result;
}

ColumnSet Catalog::parseSet(std::string_view Text) const {
  ColumnSet Result;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string_view Piece = Text.substr(
        Pos, Comma == std::string_view::npos ? std::string_view::npos
                                             : Comma - Pos);
    // Trim surrounding whitespace.
    size_t First = Piece.find_first_not_of(" \t");
    size_t Last = Piece.find_last_not_of(" \t");
    if (First != std::string_view::npos)
      Result.insert(get(Piece.substr(First, Last - First + 1)));
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  return Result;
}

std::string Catalog::setToString(ColumnSet Set) const {
  std::string Result = "{";
  bool NeedComma = false;
  for (ColumnId Id : Set) {
    if (NeedComma)
      Result += ", ";
    Result += name(Id);
    NeedComma = true;
  }
  Result += "}";
  return Result;
}
