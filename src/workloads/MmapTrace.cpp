//===- workloads/MmapTrace.cpp - thttpd request traces ------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "workloads/MmapTrace.h"

#include "workloads/Rng.h"

#include <cmath>

using namespace relc;

std::vector<MmapRequest> relc::generateMmapTrace(const MmapTraceOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<MmapRequest> Trace;
  Trace.reserve(Opts.NumRequests);
  for (size_t I = 0; I != Opts.NumRequests; ++I) {
    // Inverse-power sampling approximates a Zipf popularity curve well
    // enough for cache behaviour: u^k concentrates mass near file 0.
    double U = R.unit();
    double Skewed = std::pow(U, 1.0 / (1.0 - Opts.ZipfSkew));
    auto FileId = static_cast<int64_t>(Skewed * Opts.NumFiles);
    if (FileId >= Opts.NumFiles)
      FileId = Opts.NumFiles - 1;
    // Stable per-file size derived from the id.
    int64_t Size = 512 + (FileId * 2654435761u) % (256 * 1024);
    auto Timestamp = static_cast<int64_t>(I / Opts.RequestsPerSecond);
    Trace.push_back({FileId, Size, Timestamp});
  }
  return Trace;
}
