//===- workloads/TileTrace.cpp - ZTopo tile access traces --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "workloads/TileTrace.h"

#include "workloads/Rng.h"

#include <algorithm>

using namespace relc;

std::vector<TileRequest> relc::generateTileTrace(const TileTraceOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<TileRequest> Trace;
  Trace.reserve(Opts.NumRequests);

  unsigned Level = 12;
  int64_t X = Opts.MapWidth / 2;
  int64_t Y = Opts.MapWidth / 2;
  auto Clamp = [&](int64_t V) {
    return std::max<int64_t>(
        0, std::min<int64_t>(V, static_cast<int64_t>(Opts.MapWidth) - 1));
  };

  while (Trace.size() < Opts.NumRequests) {
    // Request every tile in the viewport (viewers fetch whole rows).
    for (unsigned Dy = 0; Dy != Opts.ViewHeight; ++Dy)
      for (unsigned Dx = 0; Dx != Opts.ViewWidth; ++Dx) {
        int64_t Tx = Clamp(X + Dx);
        int64_t Ty = Clamp(Y + Dy);
        int64_t Size = R.range(8 * 1024, 64 * 1024);
        Trace.push_back({tileId(Level, static_cast<unsigned>(Tx),
                                static_cast<unsigned>(Ty)),
                         Size});
        if (Trace.size() == Opts.NumRequests)
          return Trace;
      }
    if (R.chance(Opts.PanProbability)) {
      // Pan by a tile or two in a random direction.
      X = Clamp(X + R.range(-2, 2));
      Y = Clamp(Y + R.range(-2, 2));
    } else {
      // Jump (double-click on the overview map).
      X = Clamp(static_cast<int64_t>(R.below(Opts.MapWidth)));
      Y = Clamp(static_cast<int64_t>(R.below(Opts.MapWidth)));
    }
  }
  return Trace;
}
