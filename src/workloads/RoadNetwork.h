//===- workloads/RoadNetwork.h - Synthetic road networks --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic road networks for the graph benchmark of
/// Section 6.1. The paper used the road network of the northwestern
/// USA (1,207,945 nodes / 2,840,208 edges ≈ 2.35 directed edges per
/// node); we substitute a seeded generator with the same shape — a
/// near-planar 2-D grid with occasional diagonal shortcuts, randomized
/// weights and bounded out-degree — whose size scales to the benchmark
/// budget. See DESIGN.md §4 for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_ROADNETWORK_H
#define RELC_WORKLOADS_ROADNETWORK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relc {

struct RoadEdge {
  int64_t Src;
  int64_t Dst;
  int64_t Weight;
};

struct RoadNetworkOptions {
  unsigned Width = 64;   ///< Grid columns.
  unsigned Height = 64;  ///< Grid rows.
  uint64_t Seed = 0x5eed;
  /// Probability that a grid road is missing (rivers, mountains...).
  double MissingRoadFraction = 0.08;
  /// Probability of a diagonal shortcut at a grid point.
  double DiagonalFraction = 0.05;
  int64_t MaxWeight = 100;
};

/// Generates the directed edge list (grid roads exist in both
/// directions; shortcuts are one-way). Node ids are y*Width + x.
std::vector<RoadEdge> generateRoadNetwork(const RoadNetworkOptions &Opts);

/// Number of node ids in the network (Width * Height).
inline uint64_t roadNetworkNodeCount(const RoadNetworkOptions &Opts) {
  return static_cast<uint64_t>(Opts.Width) * Opts.Height;
}

} // namespace relc

#endif // RELC_WORKLOADS_ROADNETWORK_H
