//===- workloads/LocCount.h - Non-comment line counting ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metric of Table 1: non-comment, non-blank lines of code.
/// Handles // and /* */ comments (sufficient for the C++ modules the
/// table compares).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_LOCCOUNT_H
#define RELC_WORKLOADS_LOCCOUNT_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace relc {

/// Counts non-comment, non-blank lines in \p Source.
size_t countLoc(std::string_view Source);

/// Counts non-comment, non-blank lines summed over \p Paths; files
/// that cannot be read count as zero (reported via \p Missing if
/// non-null).
size_t countLocFiles(const std::vector<std::string> &Paths,
                     std::vector<std::string> *Missing = nullptr);

} // namespace relc

#endif // RELC_WORKLOADS_LOCCOUNT_H
