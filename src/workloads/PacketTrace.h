//===- workloads/PacketTrace.h - IpCap packet traces ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic network packet traces for the IpCap experiment (Section
/// 6.2, Fig. 13). IpCap counts bytes per (local host, remote host)
/// flow: per packet it looks the flow up and increments counters, and
/// periodically it iterates all flows, logs them and drops them. The
/// paper replayed 3×10^5 random packets; we generate the same shape:
/// uniformly random flows over a small local-host set and a larger
/// remote-host set. Live capture is replaced by a seeded generator —
/// I/O was never the measured quantity.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_PACKETTRACE_H
#define RELC_WORKLOADS_PACKETTRACE_H

#include <cstdint>
#include <cstddef>
#include <vector>

namespace relc {

struct Packet {
  int64_t LocalHost;
  int64_t RemoteHost;
  int64_t Bytes;
  bool Outgoing;
};

struct PacketTraceOptions {
  size_t NumPackets = 300000; ///< The paper's 3×10^5.
  unsigned NumLocalHosts = 64;
  unsigned NumRemoteHosts = 4096;
  uint64_t Seed = 0xcafe;
};

std::vector<Packet> generatePacketTrace(const PacketTraceOptions &Opts);

} // namespace relc

#endif // RELC_WORKLOADS_PACKETTRACE_H
