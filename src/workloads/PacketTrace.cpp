//===- workloads/PacketTrace.cpp - IpCap packet traces -----------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "workloads/PacketTrace.h"

#include "workloads/Rng.h"

using namespace relc;

std::vector<Packet> relc::generatePacketTrace(const PacketTraceOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<Packet> Trace;
  Trace.reserve(Opts.NumPackets);
  for (size_t I = 0; I != Opts.NumPackets; ++I) {
    Packet P;
    P.LocalHost = static_cast<int64_t>(R.below(Opts.NumLocalHosts));
    P.RemoteHost = static_cast<int64_t>(R.below(Opts.NumRemoteHosts));
    P.Bytes = R.range(40, 1500); // Ethernet-ish frame sizes.
    P.Outgoing = R.chance(0.5);
    Trace.push_back(P);
  }
  return Trace;
}
