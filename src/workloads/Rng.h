//===- workloads/Rng.h - Deterministic random numbers -----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64 core) so every workload and
/// property test is reproducible from its seed, independent of the
/// standard library's distribution implementations.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_RNG_H
#define RELC_WORKLOADS_RNG_H

#include <cstddef>
#include <cstdint>

namespace relc {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound); Bound must be positive.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability \p P.
  bool chance(double P) { return unit() < P; }

private:
  uint64_t State;
};

} // namespace relc

#endif // RELC_WORKLOADS_RNG_H
