//===- workloads/MmapTrace.h - thttpd request traces ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic HTTP request traces for the thttpd experiment (Section
/// 6.2). thttpd's mmc module caches mmap()ed files keyed by (dev, ino,
/// size, mtime); per request it looks the mapping up or creates it, and
/// a periodic cleanup pass evicts mappings idle beyond a threshold.
/// Web traffic is heavily skewed, so file popularity follows a
/// Zipf-like law; live HTTP and real mmap() calls are replaced by the
/// request stream (the cache's data structure operations are what the
/// experiment measures).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_MMAPTRACE_H
#define RELC_WORKLOADS_MMAPTRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relc {

struct MmapRequest {
  int64_t FileId;
  int64_t Size;
  int64_t Timestamp; ///< Seconds; drives TTL-based cleanup.
};

struct MmapTraceOptions {
  size_t NumRequests = 200000;
  unsigned NumFiles = 10000;
  double ZipfSkew = 0.9;
  unsigned RequestsPerSecond = 500;
  uint64_t Seed = 0x7774;
};

std::vector<MmapRequest> generateMmapTrace(const MmapTraceOptions &Opts);

} // namespace relc

#endif // RELC_WORKLOADS_MMAPTRACE_H
