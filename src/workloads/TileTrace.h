//===- workloads/TileTrace.h - ZTopo tile access traces ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic map-viewer traces for the ZTopo experiment (Section 6.2).
/// ZTopo's tile cache tracks, per tile, a state (in memory / on disk /
/// loading over the network) plus bookkeeping, with per-state eviction
/// lists. A user session is a random walk of the viewport over a tiled
/// map with occasional zooms, which yields the characteristic
/// lookup-heavy, locality-rich access pattern; HTTP fetches are
/// replaced by the generated request stream.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_WORKLOADS_TILETRACE_H
#define RELC_WORKLOADS_TILETRACE_H

#include <cstdint>
#include <cstddef>
#include <vector>

namespace relc {

struct TileRequest {
  int64_t TileId; ///< Encodes (level, x, y).
  int64_t Size;   ///< Tile byte size.
};

struct TileTraceOptions {
  size_t NumRequests = 200000;
  unsigned MapWidth = 512;  ///< Tiles per axis at the deepest level.
  unsigned ViewWidth = 6;   ///< Viewport size in tiles.
  unsigned ViewHeight = 4;
  double PanProbability = 0.9; ///< vs. jumping to a random spot.
  uint64_t Seed = 0x2109;
};

/// Encodes a tile coordinate as a single id.
inline int64_t tileId(unsigned Level, unsigned X, unsigned Y) {
  return (static_cast<int64_t>(Level) << 40) |
         (static_cast<int64_t>(X) << 20) | Y;
}

std::vector<TileRequest> generateTileTrace(const TileTraceOptions &Opts);

} // namespace relc

#endif // RELC_WORKLOADS_TILETRACE_H
