//===- workloads/RoadNetwork.cpp - Synthetic road networks -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "workloads/RoadNetwork.h"

#include "workloads/Rng.h"

using namespace relc;

std::vector<RoadEdge>
relc::generateRoadNetwork(const RoadNetworkOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<RoadEdge> Edges;
  auto NodeAt = [&](unsigned X, unsigned Y) {
    return static_cast<int64_t>(Y) * Opts.Width + X;
  };
  auto AddRoad = [&](int64_t A, int64_t B) {
    int64_t W = R.range(1, Opts.MaxWeight);
    // Two directed edges with the same weight: a two-way road.
    Edges.push_back({A, B, W});
    Edges.push_back({B, A, W});
  };

  for (unsigned Y = 0; Y != Opts.Height; ++Y)
    for (unsigned X = 0; X != Opts.Width; ++X) {
      if (X + 1 != Opts.Width && !R.chance(Opts.MissingRoadFraction))
        AddRoad(NodeAt(X, Y), NodeAt(X + 1, Y));
      if (Y + 1 != Opts.Height && !R.chance(Opts.MissingRoadFraction))
        AddRoad(NodeAt(X, Y), NodeAt(X, Y + 1));
      // One-way diagonal shortcut (highway ramps, cut-throughs).
      if (X + 1 != Opts.Width && Y + 1 != Opts.Height &&
          R.chance(Opts.DiagonalFraction))
        Edges.push_back(
            {NodeAt(X, Y), NodeAt(X + 1, Y + 1), R.range(1, Opts.MaxWeight)});
    }
  return Edges;
}
