//===- workloads/LocCount.cpp - Non-comment line counting --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "workloads/LocCount.h"

#include <fstream>
#include <sstream>

using namespace relc;

size_t relc::countLoc(std::string_view Source) {
  size_t Count = 0;
  bool InBlockComment = false;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    std::string_view Line = Source.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    bool HasCode = false;
    for (size_t I = 0; I < Line.size(); ++I) {
      char C = Line[I];
      if (InBlockComment) {
        if (C == '*' && I + 1 < Line.size() && Line[I + 1] == '/') {
          InBlockComment = false;
          ++I;
        }
        continue;
      }
      if (C == '/' && I + 1 < Line.size() && Line[I + 1] == '/')
        break; // rest of the line is a comment
      if (C == '/' && I + 1 < Line.size() && Line[I + 1] == '*') {
        InBlockComment = true;
        ++I;
        continue;
      }
      if (C != ' ' && C != '\t' && C != '\r')
        HasCode = true;
    }
    if (HasCode)
      ++Count;
    if (Eol == std::string_view::npos)
      break;
    Pos = Eol + 1;
  }
  return Count;
}

size_t relc::countLocFiles(const std::vector<std::string> &Paths,
                           std::vector<std::string> *Missing) {
  size_t Total = 0;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      if (Missing)
        Missing->push_back(Path);
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Total += countLoc(Buf.str());
  }
  return Total;
}
