//===- ds/VectorMap.h - Dense array map -------------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `vector` primitive: an array mapping small non-negative
/// integer keys to children (used e.g. for the two-valued `state` column
/// of the scheduler, Fig. 2). O(1) lookup; scans are in key order and
/// skip holes. Keys are raw indices; callers translate their key type
/// to/from size_t (the instance layer does this for tuples, generated
/// code for typed integer columns).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_VECTORMAP_H
#define RELC_DS_VECTORMAP_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace relc {

template <typename NodeT> class VectorMap {
public:
  using KeyT = size_t;

  /// Refuse to grow beyond this many slots; a decomposition mapping a
  /// high-cardinality column through a vector is a (legal) bad choice,
  /// but an absurd index is almost certainly a bug.
  static constexpr size_t MaxSlots = size_t(1) << 26;

  VectorMap() = default;
  VectorMap(const VectorMap &) = delete;
  VectorMap &operator=(const VectorMap &) = delete;

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  NodeT *lookup(size_t I) const {
    return I < Slots.size() ? Slots[I] : nullptr;
  }

  void insert(size_t I, NodeT *Child) {
    assert(I < MaxSlots && "vector map key out of supported range");
    if (I >= Slots.size())
      Slots.resize(I + 1, nullptr);
    assert(!Slots[I] && "duplicate key in VectorMap");
    Slots[I] = Child;
    ++Size;
  }

  NodeT *erase(size_t I) {
    if (I >= Slots.size() || !Slots[I])
      return nullptr;
    NodeT *Child = Slots[I];
    Slots[I] = nullptr;
    --Size;
    return Child;
  }

  bool eraseNode(NodeT *Child) {
    for (size_t I = 0; I != Slots.size(); ++I)
      if (Slots[I] == Child) {
        Slots[I] = nullptr;
        --Size;
        return true;
      }
    return false;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    for (size_t I = 0; I != Slots.size(); ++I) {
      if (!Slots[I])
        continue;
      if (!Fn(I, Slots[I]))
        return false;
    }
    return true;
  }

private:
  std::vector<NodeT *> Slots;
  size_t Size = 0;
};

} // namespace relc

#endif // RELC_DS_VECTORMAP_H
