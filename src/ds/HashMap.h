//===- ds/HashMap.h - Chained hash table map --------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `htable` primitive (the boost::unordered_map wrapper of
/// Section 6): a separately-chained hash table with doubling growth.
/// Expected O(1) lookup/insert/erase.
///
/// Traits must supply:
///   static bool equal(const KeyT &, const KeyT &);
///   static size_t hash(const KeyT &);
///
/// lookup/erase are heterogeneous: any probe type K works, provided the
/// traits overload equal(const KeyT &, const K &) and hash(const K &)
/// consistently with the stored-key versions (the instance layer uses
/// this to probe tuple-keyed maps with borrowed TupleViews, avoiding a
/// key materialization per probe).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_HASHMAP_H
#define RELC_DS_HASHMAP_H

#include "support/Arena.h"
#include "support/Checks.h"

#include <cassert>
#include <cstddef>
#include <new>
#include <vector>

namespace relc {

template <typename Traits> class HashMap {
public:
  using KeyT = typename Traits::KeyT;
  using NodeT = typename Traits::NodeT;

  HashMap() : Buckets(InitialBuckets, nullptr) {}
  HashMap(const HashMap &) = delete;
  HashMap &operator=(const HashMap &) = delete;

  ~HashMap() {
    for (Cell *Head : Buckets)
      while (Head) {
        Cell *Next = Head->Next;
        freeCell(Head);
        Head = Next;
      }
  }

  /// Binds cell storage to \p A (unbound: global heap). Set before the
  /// first insert; rebinding a populated map would recycle cells into
  /// the wrong allocator.
  void setArena(ArenaRef A) {
    assert(empty() && "setArena on a populated map");
    Arena = A;
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  template <typename ProbeT> NodeT *lookup(const ProbeT &K) const {
    for (Cell *C = Buckets[bucketOf(K)]; C; C = C->Next)
      if (Traits::equal(C->Key, K))
        return C->Child;
    return nullptr;
  }

  void insert(const KeyT &K, NodeT *Child) {
    RELC_EXPENSIVE_ASSERT(!lookup(K) && "duplicate key in HashMap");
    if (Size + 1 > Buckets.size())
      rehash(Buckets.size() * 2);
    size_t B = bucketOf(K);
    Buckets[B] = new (Arena.allocate(sizeof(Cell))) Cell{K, Child, Buckets[B]};
    ++Size;
  }

  template <typename ProbeT> NodeT *erase(const ProbeT &K) {
    Cell **Link = &Buckets[bucketOf(K)];
    while (*Link) {
      Cell *C = *Link;
      if (Traits::equal(C->Key, K)) {
        NodeT *Child = C->Child;
        *Link = C->Next;
        freeCell(C);
        --Size;
        return Child;
      }
      Link = &C->Next;
    }
    return nullptr;
  }

  /// O(n) fallback; hash tables are not intrusive.
  bool eraseNode(NodeT *Child) {
    for (Cell *&Head : Buckets)
      for (Cell **Link = &Head; *Link; Link = &(*Link)->Next)
        if ((*Link)->Child == Child) {
          Cell *C = *Link;
          *Link = C->Next;
          freeCell(C);
          --Size;
          return true;
        }
    return false;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    for (Cell *Head : Buckets)
      for (Cell *C = Head; C; C = C->Next)
        if (!Fn(static_cast<const KeyT &>(C->Key), C->Child))
          return false;
    return true;
  }

private:
  static constexpr size_t InitialBuckets = 8;

  struct Cell {
    KeyT Key;
    NodeT *Child;
    Cell *Next;
  };

  void freeCell(Cell *C) noexcept {
    C->~Cell();
    Arena.deallocate(C, sizeof(Cell));
  }

  template <typename ProbeT> size_t bucketOf(const ProbeT &K) const {
    return Traits::hash(K) & (Buckets.size() - 1);
  }

  void rehash(size_t NewCount) {
    std::vector<Cell *> Old = std::move(Buckets);
    Buckets.assign(NewCount, nullptr);
    for (Cell *Head : Old)
      while (Head) {
        Cell *Next = Head->Next;
        size_t B = bucketOf(Head->Key);
        Head->Next = Buckets[B];
        Buckets[B] = Head;
        Head = Next;
      }
  }

  std::vector<Cell *> Buckets;
  size_t Size = 0;
  ArenaRef Arena;
};

} // namespace relc

#endif // RELC_DS_HASHMAP_H
