//===- ds/AvlCore.h - Generic AVL tree algorithm ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AVL balancing algorithm shared by the non-intrusive AvlMap and
/// the intrusive IntrusiveAvl containers. The cell layout is abstracted
/// behind an Ops policy so the same (notoriously fiddly) rebalancing
/// logic is written and tested exactly once:
///
///   struct Ops {
///     static CellT *&left(CellT *);
///     static CellT *&right(CellT *);
///     static int32_t &height(CellT *);
///     static const KeyT &key(const CellT *);
///     static bool less(const KeyT &, const KeyT &);
///   };
///
/// All entry points are static and take the root pointer explicitly, so
/// callers own the storage (important for intrusive trees, where the
/// container is just a root pointer plus a hook slot).
///
/// Erase relinks cells rather than swapping payloads, which is required
/// for the intrusive instantiation (the cell *is* the client's node).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_AVLCORE_H
#define RELC_DS_AVLCORE_H

#include <cassert>
#include <cstdint>
#include <utility>

namespace relc {

template <typename CellT, typename KeyT, typename Ops> struct AvlCore {
  /// find/erase are heterogeneous: any probe type works, provided
  /// Ops::less accepts it on both sides consistently with the stored
  /// key order (used for borrowed key views on the hot probe path).
  template <typename ProbeT> static CellT *find(CellT *Root, const ProbeT &K) {
    CellT *C = Root;
    while (C) {
      if (Ops::less(K, Ops::key(C)))
        C = Ops::left(C);
      else if (Ops::less(Ops::key(C), K))
        C = Ops::right(C);
      else
        return C;
    }
    return nullptr;
  }

  /// Links \p Cell (whose key must not already be present) into the tree.
  static void insert(CellT *&Root, CellT *Cell) {
    Ops::left(Cell) = nullptr;
    Ops::right(Cell) = nullptr;
    Ops::height(Cell) = 1;
    Root = insertRec(Root, Cell);
  }

  /// Unlinks and returns the cell with key \p K, or nullptr.
  template <typename ProbeT> static CellT *erase(CellT *&Root, const ProbeT &K) {
    CellT *Removed = nullptr;
    Root = eraseRec(Root, K, Removed);
    return Removed;
  }

  /// Calls \p Fn(cell) in key order; \p Fn returns false to stop early.
  /// \returns false if iteration was stopped.
  template <typename FnT> static bool forEach(CellT *Root, FnT &&Fn) {
    return forEachRec(Root, Fn);
  }

  /// Verifies AVL invariants (ordering + balance); for tests.
  static bool checkInvariants(CellT *Root) { return checkRec(Root).Ok; }

private:
  static int32_t heightOf(CellT *C) { return C ? Ops::height(C) : 0; }

  static void updateHeight(CellT *C) {
    int32_t Hl = heightOf(Ops::left(C));
    int32_t Hr = heightOf(Ops::right(C));
    Ops::height(C) = 1 + (Hl > Hr ? Hl : Hr);
  }

  static int32_t balanceOf(CellT *C) {
    return heightOf(Ops::left(C)) - heightOf(Ops::right(C));
  }

  static CellT *rotateRight(CellT *Y) {
    CellT *X = Ops::left(Y);
    Ops::left(Y) = Ops::right(X);
    Ops::right(X) = Y;
    updateHeight(Y);
    updateHeight(X);
    return X;
  }

  static CellT *rotateLeft(CellT *X) {
    CellT *Y = Ops::right(X);
    Ops::right(X) = Ops::left(Y);
    Ops::left(Y) = X;
    updateHeight(X);
    updateHeight(Y);
    return Y;
  }

  static CellT *rebalance(CellT *C) {
    updateHeight(C);
    int32_t B = balanceOf(C);
    if (B > 1) {
      if (balanceOf(Ops::left(C)) < 0)
        Ops::left(C) = rotateLeft(Ops::left(C));
      return rotateRight(C);
    }
    if (B < -1) {
      if (balanceOf(Ops::right(C)) > 0)
        Ops::right(C) = rotateRight(Ops::right(C));
      return rotateLeft(C);
    }
    return C;
  }

  static CellT *insertRec(CellT *C, CellT *Cell) {
    if (!C)
      return Cell;
    if (Ops::less(Ops::key(Cell), Ops::key(C)))
      Ops::left(C) = insertRec(Ops::left(C), Cell);
    else {
      assert(Ops::less(Ops::key(C), Ops::key(Cell)) &&
             "duplicate key inserted into AVL tree");
      Ops::right(C) = insertRec(Ops::right(C), Cell);
    }
    return rebalance(C);
  }

  /// Unlinks the minimum cell of the subtree rooted at \p C into \p Min
  /// and returns the new subtree root.
  static CellT *detachMin(CellT *C, CellT *&Min) {
    if (!Ops::left(C)) {
      Min = C;
      return Ops::right(C);
    }
    Ops::left(C) = detachMin(Ops::left(C), Min);
    return rebalance(C);
  }

  template <typename ProbeT>
  static CellT *eraseRec(CellT *C, const ProbeT &K, CellT *&Removed) {
    if (!C)
      return nullptr;
    if (Ops::less(K, Ops::key(C))) {
      Ops::left(C) = eraseRec(Ops::left(C), K, Removed);
      return rebalance(C);
    }
    if (Ops::less(Ops::key(C), K)) {
      Ops::right(C) = eraseRec(Ops::right(C), K, Removed);
      return rebalance(C);
    }
    Removed = C;
    CellT *L = Ops::left(C);
    CellT *R = Ops::right(C);
    if (!L)
      return R;
    if (!R)
      return L;
    // Two children: splice the successor cell into C's position.
    CellT *Min = nullptr;
    R = detachMin(R, Min);
    Ops::left(Min) = L;
    Ops::right(Min) = R;
    return rebalance(Min);
  }

  template <typename FnT> static bool forEachRec(CellT *C, FnT &&Fn) {
    if (!C)
      return true;
    if (!forEachRec(Ops::left(C), Fn))
      return false;
    if (!Fn(C))
      return false;
    return forEachRec(Ops::right(C), Fn);
  }

  struct CheckResult {
    bool Ok;
    int32_t Height;
  };

  static CheckResult checkRec(CellT *C) {
    if (!C)
      return {true, 0};
    CheckResult L = checkRec(Ops::left(C));
    CheckResult R = checkRec(Ops::right(C));
    if (!L.Ok || !R.Ok)
      return {false, 0};
    if (Ops::left(C) && !Ops::less(Ops::key(Ops::left(C)), Ops::key(C)))
      return {false, 0};
    if (Ops::right(C) && !Ops::less(Ops::key(C), Ops::key(Ops::right(C))))
      return {false, 0};
    int32_t H = 1 + (L.Height > R.Height ? L.Height : R.Height);
    if (H != Ops::height(C))
      return {false, 0};
    int32_t B = L.Height - R.Height;
    if (B < -1 || B > 1)
      return {false, 0};
    return {true, H};
  }
};

} // namespace relc

#endif // RELC_DS_AVLCORE_H
