//===- ds/IntrusiveList.h - Intrusive doubly-linked list map ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's intrusive `dlist` (the boost::intrusive::list wrapper of
/// Section 6): link fields live inside the child node, so membership
/// costs no allocation and an entry can be unlinked in O(1) given only
/// the child pointer. This is what makes removal through a *shared*
/// node cheap (Section 6.1: "because the lists are intrusive the
/// compiler can find node w using either path and remove it from both
/// paths without requiring any additional lookups").
///
/// Traits must supply:
///   static MapHook<NodeT, KeyT> &hook(NodeT *, unsigned Slot);
///   static bool equal(const KeyT &, const KeyT &);
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_INTRUSIVELIST_H
#define RELC_DS_INTRUSIVELIST_H

#include "ds/MapHook.h"
#include "support/Checks.h"

#include <cassert>
#include <cstddef>

namespace relc {

template <typename Traits> class IntrusiveList {
public:
  using KeyT = typename Traits::KeyT;
  using NodeT = typename Traits::NodeT;
  using Hook = MapHook<NodeT, KeyT>;

  /// \p Slot selects which of the child's hooks this list uses; distinct
  /// incoming intrusive edges of one node use distinct slots.
  explicit IntrusiveList(unsigned Slot) : Slot(Slot) {
    assert(Slot < HookSlotCount<Traits>::value &&
           "hook slot beyond the traits' hook array");
  }
  IntrusiveList(const IntrusiveList &) = delete;
  IntrusiveList &operator=(const IntrusiveList &) = delete;

  ~IntrusiveList() {
    // Unlink everything so hooks do not dangle into a dead list.
    NodeT *N = Head;
    while (N) {
      Hook &H = hookOf(N);
      NodeT *Next = H.B;
      H = Hook();
      N = Next;
    }
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Heterogeneous: \p K may be any type Traits::equal accepts as the
  /// second argument (e.g. a borrowed TupleView).
  template <typename ProbeT> NodeT *lookup(const ProbeT &K) const {
    for (NodeT *N = Head; N; N = hookOf(N).B)
      if (Traits::equal(hookOf(N).Key, K))
        return N;
    return nullptr;
  }

  void insert(const KeyT &K, NodeT *Child) {
    Hook &H = hookOf(Child);
    assert(!H.Linked && "node already linked through this hook slot");
    RELC_EXPENSIVE_ASSERT(!lookup(K) && "duplicate key in IntrusiveList");
    H.Key = K;
    H.Linked = true;
    H.A = nullptr;
    H.B = Head;
    if (Head)
      hookOf(Head).A = Child;
    Head = Child;
    ++Size;
  }

  template <typename ProbeT> NodeT *erase(const ProbeT &K) {
    NodeT *N = lookup(K);
    if (!N)
      return nullptr;
    eraseNode(N);
    return N;
  }

  /// O(1): unlink via the child's embedded hook.
  bool eraseNode(NodeT *Child) {
    Hook &H = hookOf(Child);
    if (!H.Linked)
      return false;
    if (H.A)
      hookOf(H.A).B = H.B;
    else {
      assert(Head == Child && "unlinked node claims to be linked");
      Head = H.B;
    }
    if (H.B)
      hookOf(H.B).A = H.A;
    H = Hook();
    --Size;
    return true;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    NodeT *N = Head;
    while (N) {
      // Read the next link before calling Fn in case Fn unlinks N.
      NodeT *Next = hookOf(N).B;
      if (!Fn(static_cast<const KeyT &>(hookOf(N).Key), N))
        return false;
      N = Next;
    }
    return true;
  }

private:
  Hook &hookOf(NodeT *N) const { return Traits::hook(N, Slot); }

  NodeT *Head = nullptr;
  size_t Size = 0;
  unsigned Slot;
};

} // namespace relc

#endif // RELC_DS_INTRUSIVELIST_H
