//===- ds/DListMap.h - Doubly-linked list map -------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `dlist` primitive: an unordered doubly-linked list of
/// key/value pairs (the std::list wrapper of Section 6). O(n) lookup,
/// O(1) insertion; scans follow insertion order.
///
/// The Traits policy supplies key comparison:
///   struct Traits {
///     using KeyT = ...; using NodeT = ...;
///     static bool equal(const KeyT &, const KeyT &);
///   };
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_DLISTMAP_H
#define RELC_DS_DLISTMAP_H

#include "support/Arena.h"
#include "support/Checks.h"

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace relc {

template <typename Traits> class DListMap {
public:
  using KeyT = typename Traits::KeyT;
  using NodeT = typename Traits::NodeT;

  DListMap() = default;
  DListMap(const DListMap &) = delete;
  DListMap &operator=(const DListMap &) = delete;

  ~DListMap() {
    Cell *C = Head;
    while (C) {
      Cell *Next = C->Next;
      freeCell(C);
      C = Next;
    }
  }

  /// Binds cell storage to \p A (unbound: global heap). Set before the
  /// first insert.
  void setArena(ArenaRef A) {
    assert(empty() && "setArena on a populated map");
    Arena = A;
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Heterogeneous: \p K may be any type Traits::equal accepts as the
  /// second argument (e.g. a borrowed TupleView).
  template <typename ProbeT> NodeT *lookup(const ProbeT &K) const {
    Cell *C = findCell(K);
    return C ? C->Child : nullptr;
  }

  void insert(const KeyT &K, NodeT *Child) {
    RELC_EXPENSIVE_ASSERT(!findCell(K) && "duplicate key in DListMap");
    Cell *C = new (Arena.allocate(sizeof(Cell))) Cell{K, Child, nullptr, Head};
    if (Head)
      Head->Prev = C;
    Head = C;
    if (!Tail)
      Tail = C;
    ++Size;
  }

  template <typename ProbeT> NodeT *erase(const ProbeT &K) {
    Cell *C = findCell(K);
    if (!C)
      return nullptr;
    NodeT *Child = C->Child;
    unlink(C);
    freeCell(C);
    --Size;
    return Child;
  }

  /// Erases the entry pointing at \p Child. O(n): non-intrusive lists
  /// must search; intrusive lists do this in O(1).
  bool eraseNode(NodeT *Child) {
    for (Cell *C = Head; C; C = C->Next)
      if (C->Child == Child) {
        unlink(C);
        freeCell(C);
        --Size;
        return true;
      }
    return false;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    for (Cell *C = Head; C; C = C->Next)
      if (!Fn(static_cast<const KeyT &>(C->Key), C->Child))
        return false;
    return true;
  }

private:
  struct Cell {
    KeyT Key;
    NodeT *Child;
    Cell *Prev;
    Cell *Next;
  };

  void freeCell(Cell *C) noexcept {
    C->~Cell();
    Arena.deallocate(C, sizeof(Cell));
  }

  template <typename ProbeT> Cell *findCell(const ProbeT &K) const {
    for (Cell *C = Head; C; C = C->Next)
      if (Traits::equal(C->Key, K))
        return C;
    return nullptr;
  }

  void unlink(Cell *C) {
    if (C->Prev)
      C->Prev->Next = C->Next;
    else
      Head = C->Next;
    if (C->Next)
      C->Next->Prev = C->Prev;
    else
      Tail = C->Prev;
  }

  Cell *Head = nullptr;
  Cell *Tail = nullptr;
  size_t Size = 0;
  ArenaRef Arena;
};

} // namespace relc

#endif // RELC_DS_DLISTMAP_H
