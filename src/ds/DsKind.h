//===- ds/DsKind.h - Primitive data structure kinds -------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ψ of a map decomposition: which primitive data structure backs a
/// map edge (Fig. 3). Each kind advertises its lookup cost mψ(n) for the
/// query cost model of Section 4.3 and its capabilities (erase-by-node
/// for intrusive structures, dense-integer keying for vectors).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_DSKIND_H
#define RELC_DS_DSKIND_H

#include <cassert>
#include <cmath>
#include <optional>
#include <string_view>

namespace relc {

/// The primitive container kinds shipped with RelC. The set is
/// extensible: the paper's requirement is only a key-value associative
/// map interface (see EdgeMap).
enum class DsKind {
  DList,     ///< Non-intrusive doubly-linked list of key/value pairs.
  HashTable, ///< Chained hash table.
  Btree,     ///< Ordered tree map (AVL; the paper's std::map role).
  Vector,    ///< Dense array indexed by a small integer key.
  IList,     ///< Intrusive doubly-linked list (hooks live in the child).
  ITree,     ///< Intrusive ordered tree (hooks live in the child).
};

inline constexpr DsKind AllDsKinds[] = {DsKind::DList,  DsKind::HashTable,
                                        DsKind::Btree,  DsKind::Vector,
                                        DsKind::IList,  DsKind::ITree};

inline const char *dsKindName(DsKind K) {
  switch (K) {
  case DsKind::DList:
    return "dlist";
  case DsKind::HashTable:
    return "htable";
  case DsKind::Btree:
    return "btree";
  case DsKind::Vector:
    return "vector";
  case DsKind::IList:
    return "ilist";
  case DsKind::ITree:
    return "itree";
  }
  assert(false && "unknown DsKind");
  return "?";
}

inline std::optional<DsKind> parseDsKind(std::string_view Name) {
  for (DsKind K : AllDsKinds)
    if (Name == dsKindName(K))
      return K;
  return std::nullopt;
}

/// mψ(n): estimated memory accesses to look up a key among \p N entries
/// (Section 4.3). Chosen to reproduce the paper's examples (log2 n for
/// trees, n for lists).
inline double dsLookupCost(DsKind K, double N) {
  double N1 = N < 1 ? 1 : N;
  switch (K) {
  case DsKind::DList:
  case DsKind::IList:
    return N1;
  case DsKind::HashTable:
    return 1.5;
  case DsKind::Btree:
  case DsKind::ITree:
    return std::log2(N1) + 1;
  case DsKind::Vector:
    return 1.0;
  }
  assert(false && "unknown DsKind");
  return N1;
}

/// True for intrusive structures, where an entry can be unlinked given
/// only the child node (no key search). Enables the cheaper removal
/// plans of Section 4.5.
inline bool dsSupportsEraseByNode(DsKind K) {
  return K == DsKind::IList || K == DsKind::ITree;
}

/// True if ψ requires keys to be single non-negative machine integers.
inline bool dsRequiresDenseIntKey(DsKind K) { return K == DsKind::Vector; }

/// True if scans yield keys in sorted order.
inline bool dsOrderedScan(DsKind K) {
  return K == DsKind::Btree || K == DsKind::ITree || K == DsKind::Vector;
}

} // namespace relc

#endif // RELC_DS_DSKIND_H
