//===- ds/AvlMap.h - Ordered tree map ---------------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `btree` primitive (the std::map role of Section 6): an
/// ordered map implemented as a non-intrusive AVL tree over heap cells.
/// O(log n) lookup/insert/erase; scans are in key order.
///
/// Traits must supply `less`.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_AVLMAP_H
#define RELC_DS_AVLMAP_H

#include "ds/AvlCore.h"
#include "support/Arena.h"

#include <cassert>
#include <cstddef>
#include <new>

namespace relc {

template <typename Traits> class AvlMap {
public:
  using KeyT = typename Traits::KeyT;
  using NodeT = typename Traits::NodeT;

  AvlMap() = default;
  AvlMap(const AvlMap &) = delete;
  AvlMap &operator=(const AvlMap &) = delete;

  ~AvlMap() { destroyRec(Root); }

  /// Binds cell storage to \p A (unbound: global heap). Set before the
  /// first insert.
  void setArena(ArenaRef A) {
    assert(empty() && "setArena on a populated map");
    Arena = A;
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Heterogeneous: \p K may be any type Traits::less accepts against
  /// the stored keys on both sides (e.g. a borrowed TupleView).
  template <typename ProbeT> NodeT *lookup(const ProbeT &K) const {
    Cell *C = Core::find(Root, K);
    return C ? C->Child : nullptr;
  }

  void insert(const KeyT &K, NodeT *Child) {
    Cell *C = new (Arena.allocate(sizeof(Cell))) Cell;
    C->Key = K;
    C->Child = Child;
    Core::insert(Root, C);
    ++Size;
  }

  template <typename ProbeT> NodeT *erase(const ProbeT &K) {
    Cell *C = Core::erase(Root, K);
    if (!C)
      return nullptr;
    NodeT *Child = C->Child;
    freeCell(C);
    --Size;
    return Child;
  }

  /// O(n) fallback (scan for the entry, then key-erase).
  bool eraseNode(NodeT *Child) {
    const Cell *Found = nullptr;
    Core::forEach(Root, [&](Cell *C) {
      if (C->Child == Child) {
        Found = C;
        return false;
      }
      return true;
    });
    if (!Found)
      return false;
    KeyT K = Found->Key;
    return erase(K) != nullptr;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    return Core::forEach(Root, [&](Cell *C) {
      return Fn(static_cast<const KeyT &>(C->Key), C->Child);
    });
  }

  /// For tests.
  bool checkInvariants() const { return Core::checkInvariants(Root); }

private:
  struct Cell {
    KeyT Key{};
    NodeT *Child = nullptr;
    Cell *Left = nullptr;
    Cell *Right = nullptr;
    int32_t Height = 0;
  };

  struct CellOps {
    static Cell *&left(Cell *C) { return C->Left; }
    static Cell *&right(Cell *C) { return C->Right; }
    static int32_t &height(Cell *C) { return C->Height; }
    static const KeyT &key(const Cell *C) { return C->Key; }
    template <typename A, typename B> static bool less(const A &X, const B &Y) {
      return Traits::less(X, Y);
    }
  };

  using Core = AvlCore<Cell, KeyT, CellOps>;

  void freeCell(Cell *C) noexcept {
    C->~Cell();
    Arena.deallocate(C, sizeof(Cell));
  }

  void destroyRec(Cell *C) {
    if (!C)
      return;
    destroyRec(C->Left);
    destroyRec(C->Right);
    freeCell(C);
  }

  Cell *Root = nullptr;
  size_t Size = 0;
  ArenaRef Arena;
};

} // namespace relc

#endif // RELC_DS_AVLMAP_H
