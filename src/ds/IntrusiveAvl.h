//===- ds/IntrusiveAvl.h - Intrusive ordered tree map -----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's intrusive ordered map (the boost::intrusive::set wrapper
/// of Section 6): the child nodes themselves are the AVL cells, so
/// membership costs no allocation and an entry can be removed given the
/// child alone (O(log n), via the key cached in its hook). Shares the
/// balancing algorithm in AvlCore with the non-intrusive AvlMap.
///
/// AvlCore requires stateless accessors but the hook slot is chosen at
/// run time, so each possible slot gets its own Ops instantiation and
/// operations dispatch once on the slot.
///
/// Traits must supply `hook`, `less` and `equal`.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_INTRUSIVEAVL_H
#define RELC_DS_INTRUSIVEAVL_H

#include "ds/AvlCore.h"
#include "ds/MapHook.h"

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace relc {

template <typename Traits> class IntrusiveAvl {
public:
  using KeyT = typename Traits::KeyT;
  using NodeT = typename Traits::NodeT;
  using Hook = MapHook<NodeT, KeyT>;

  /// Nodes support at most this many intrusive hook slots. Traits may
  /// declare a smaller `static constexpr unsigned NumSlots` matching its
  /// hook array; per-slot code is then only instantiated up to it (an
  /// accessor for a slot beyond the array would be an out-of-bounds
  /// access even as dead code).
  static constexpr unsigned MaxSlots = MaxHookSlots;

  /// \p Slot selects which of the child's hooks this tree uses.
  explicit IntrusiveAvl(unsigned Slot) : Slot(Slot) {
    assert(Slot < UsedSlots && "hook slot beyond the traits' hook array");
  }
  IntrusiveAvl(const IntrusiveAvl &) = delete;
  IntrusiveAvl &operator=(const IntrusiveAvl &) = delete;

  ~IntrusiveAvl() { unlinkRec(Root); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Heterogeneous: \p K may be any type Traits::less accepts against
  /// the stored keys on both sides (e.g. a borrowed TupleView).
  template <typename ProbeT> NodeT *lookup(const ProbeT &K) const {
    NodeT *N = Root;
    while (N) {
      const Hook &H = hookOf(N);
      if (Traits::less(K, H.Key))
        N = H.A;
      else if (Traits::less(H.Key, K))
        N = H.B;
      else
        return N;
    }
    return nullptr;
  }

  void insert(const KeyT &K, NodeT *Child) {
    Hook &H = hookOf(Child);
    assert(!H.Linked && "node already linked through this hook slot");
    H.Key = K;
    H.Linked = true;
    dispatch([&](auto S) { CoreFor<decltype(S)::value>::insert(Root, Child); });
    ++Size;
  }

  template <typename ProbeT> NodeT *erase(const ProbeT &K) {
    NodeT *Removed = nullptr;
    dispatch(
        [&](auto S) { Removed = CoreFor<decltype(S)::value>::erase(Root, K); });
    if (!Removed)
      return nullptr;
    hookOf(Removed) = Hook();
    --Size;
    return Removed;
  }

  /// O(log n): re-finds the entry through the key cached in its hook.
  bool eraseNode(NodeT *Child) {
    Hook &H = hookOf(Child);
    if (!H.Linked)
      return false;
    KeyT K = H.Key;
    [[maybe_unused]] NodeT *Removed = erase(K);
    assert(Removed == Child && "hook key resolved to a different node");
    return true;
  }

  template <typename FnT> bool forEach(FnT &&Fn) const {
    bool Result = true;
    dispatch([&](auto S) {
      Result = CoreFor<decltype(S)::value>::forEach(Root, [&](NodeT *N) {
        return Fn(static_cast<const KeyT &>(hookOf(N).Key), N);
      });
    });
    return Result;
  }

  /// For tests.
  bool checkInvariants() const {
    bool Result = true;
    dispatch([&](auto S) {
      Result = CoreFor<decltype(S)::value>::checkInvariants(Root);
    });
    return Result;
  }

private:
  /// Ops bound to a compile-time slot.
  template <unsigned S> struct SlotOps {
    static NodeT *&left(NodeT *N) { return Traits::hook(N, S).A; }
    static NodeT *&right(NodeT *N) { return Traits::hook(N, S).B; }
    static int32_t &height(NodeT *N) { return Traits::hook(N, S).Aux; }
    static const KeyT &key(const NodeT *N) {
      return Traits::hook(const_cast<NodeT *>(N), S).Key;
    }
    template <typename A, typename B> static bool less(const A &X, const B &Y) {
      return Traits::less(X, Y);
    }
  };

  template <unsigned S> using CoreFor = AvlCore<NodeT, KeyT, SlotOps<S>>;

  static constexpr unsigned UsedSlots = HookSlotCount<Traits>::value;

  /// Invokes \p Fn with std::integral_constant<unsigned, S> (the C++17
  /// spelling of a compile-time slot argument) when the slot is within
  /// the traits' hook array; slots beyond it are never instantiated.
  template <unsigned S, typename FnT> void callSlot(FnT &&Fn) const {
    if constexpr (S < UsedSlots)
      Fn(std::integral_constant<unsigned, S>{});
    else
      assert(false && "hook slot beyond Traits::NumSlots");
  }

  template <typename FnT> void dispatch(FnT &&Fn) const {
    static_assert(MaxHookSlots == 8,
                  "extend dispatch()'s switch to cover every slot");
    switch (Slot) {
    case 0:
      callSlot<0>(Fn);
      return;
    case 1:
      callSlot<1>(Fn);
      return;
    case 2:
      callSlot<2>(Fn);
      return;
    case 3:
      callSlot<3>(Fn);
      return;
    case 4:
      callSlot<4>(Fn);
      return;
    case 5:
      callSlot<5>(Fn);
      return;
    case 6:
      callSlot<6>(Fn);
      return;
    case 7:
      callSlot<7>(Fn);
      return;
    }
    assert(false && "hook slot beyond supported maximum");
  }

  Hook &hookOf(NodeT *N) const { return Traits::hook(N, Slot); }

  void unlinkRec(NodeT *N) {
    if (!N)
      return;
    Hook &H = hookOf(N);
    NodeT *L = H.A;
    NodeT *R = H.B;
    H = Hook();
    unlinkRec(L);
    unlinkRec(R);
  }

  // Root is mutated through dispatch() from logically-const operations
  // (AvlCore::erase takes the root by reference even when it only
  // reads); keep it mutable so const entry points stay const.
  mutable NodeT *Root = nullptr;
  size_t Size = 0;
  unsigned Slot;
};

} // namespace relc

#endif // RELC_DS_INTRUSIVEAVL_H
