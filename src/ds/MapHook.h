//===- ds/MapHook.h - Intrusive container hooks ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hook storage for intrusive containers. A node shared by several
/// intrusive map edges (the whole point of decomposition sharing, cf.
/// Fig. 2 and Fig. 12) embeds one MapHook per incoming intrusive edge;
/// containers address their hook through the Traits::hook accessor.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_MAPHOOK_H
#define RELC_DS_MAPHOOK_H

#include <cstdint>
#include <type_traits>

namespace relc {

/// Upper bound on intrusive hook slots a node may carry.
constexpr unsigned MaxHookSlots = 8;

/// The number of hook slots a container traits type supports: its
/// `static constexpr unsigned NumSlots` when declared (a count above
/// MaxHookSlots is a compile error), MaxHookSlots otherwise. Containers
/// validate slot choices and bound per-slot instantiations with this,
/// so a traits whose node embeds a smaller hook array never has code
/// addressing slots past it.
template <typename Traits, typename = void> struct HookSlotCount {
  static constexpr unsigned value = MaxHookSlots;
};
template <typename Traits>
struct HookSlotCount<Traits, std::void_t<decltype(Traits::NumSlots)>> {
  static_assert(Traits::NumSlots <= MaxHookSlots,
                "Traits::NumSlots exceeds MaxHookSlots");
  static constexpr unsigned value = Traits::NumSlots;
};

/// One intrusive link record. IntrusiveList uses A/B as prev/next;
/// IntrusiveAvl uses A/B as left/right and Aux as subtree height. The
/// key is cached in the hook so that intrusive containers can compare
/// and re-find entries without consulting the owner.
template <typename NodeT, typename KeyT> struct MapHook {
  NodeT *A = nullptr;
  NodeT *B = nullptr;
  int32_t Aux = 0;
  bool Linked = false;
  KeyT Key{};
};

} // namespace relc

#endif // RELC_DS_MAPHOOK_H
