//===- ds/MapHook.h - Intrusive container hooks ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hook storage for intrusive containers. A node shared by several
/// intrusive map edges (the whole point of decomposition sharing, cf.
/// Fig. 2 and Fig. 12) embeds one MapHook per incoming intrusive edge;
/// containers address their hook through the Traits::hook accessor.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DS_MAPHOOK_H
#define RELC_DS_MAPHOOK_H

#include <cstdint>

namespace relc {

/// One intrusive link record. IntrusiveList uses A/B as prev/next;
/// IntrusiveAvl uses A/B as left/right and Aux as subtree height. The
/// key is cached in the hook so that intrusive containers can compare
/// and re-find entries without consulting the owner.
template <typename NodeT, typename KeyT> struct MapHook {
  NodeT *A = nullptr;
  NodeT *B = nullptr;
  int32_t Aux = 0;
  bool Linked = false;
  KeyT Key{};
};

} // namespace relc

#endif // RELC_DS_MAPHOOK_H
