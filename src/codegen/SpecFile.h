//===- codegen/SpecFile.h - RELC input file front end ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The text format the `relc` command-line compiler consumes: one file
/// declaring the relational specification, the decomposition (in the
/// Fig. 3 let-language), and the method set to synthesize.
///
///   relation scheduler(ns, pid, state, cpu)
///   fd ns, pid -> state, cpu
///
///   let w : {ns, pid, state} = unit {cpu}
///   let y : {ns} = map({pid}, htable, w)
///   let z : {state} = map({ns, pid}, ilist, w)
///   let x : {} = join(map({ns}, htable, y), map({state}, vector, z))
///
///   class scheduler_relation
///   namespace relcgen
///   query query_by_state (state) -> (ns, pid)
///   query query_cpu (ns, pid) -> (cpu)
///   remove ns, pid
///   update ns, pid
///   upsert ns, pid
///   transaction ns, pid x 3
///   concurrency sharded 8 on ns
///   wire
///
/// `upsert` emits the atomic read-modify-write pair lookup_by_/
/// upsert_by_ for a key pattern; `concurrency sharded <N> [on <col>]`
/// additionally emits a sharded thread-safe facade class wrapping N
/// generated sub-instances (shard column defaults to the first column
/// of the decomposition root's key); `transaction <cols> [x N]` emits,
/// on that facade, the atomic N-key read-modify-write transact_by_ /
/// transact<N>_by_ for a key pattern (multi-key transactions under
/// two-phase locking over exactly the owning shard stripes — it
/// therefore requires a facade, which the relc tool enforces). The
/// arity defaults to 2 (the transfer shape) and caps at 8. A bare
/// `wire` additionally emits `<class>_wire`, a constexpr dispatch
/// table mapping relserved wire opcodes to the facade methods that
/// implement them (requires `concurrency`).
///
/// Lines starting with `#` are comments. Directives may appear in any
/// order except that `relation`/`fd` must precede the `let` bindings.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_SPECFILE_H
#define RELC_CODEGEN_SPECFILE_H

#include "codegen/Options.h"
#include "decomp/Decomposition.h"

#include <optional>
#include <string>
#include <string_view>

namespace relc {

/// A fully parsed `relc` input: everything the compile pipeline needs.
struct SpecFile {
  RelSpecRef Spec;
  std::optional<Decomposition> Decomp;
  EmitterOptions Options;
};

struct SpecFileResult {
  std::optional<SpecFile> File;
  /// The bare diagnostic text, no position prefix (see message()).
  std::string Error;
  /// 1-based source position of the error; 0 when the error has no
  /// useful anchor (e.g. a missing `relation` declaration).
  unsigned Line = 0;
  unsigned Col = 0;

  bool ok() const { return File.has_value(); }
  /// "line L, col C: <Error>" when positioned, else just Error.
  std::string message() const {
    if (!Line)
      return Error;
    return "line " + std::to_string(Line) + ", col " +
           std::to_string(Col) + ": " + Error;
  }
};

/// Parses the text of one relc input file.
SpecFileResult parseSpecFile(std::string_view Text);

} // namespace relc

#endif // RELC_CODEGEN_SPECFILE_H
