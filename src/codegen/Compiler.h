//===- codegen/Compiler.h - The relc pipeline, assembled --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relc compilation pipeline as one call:
///
///   SpecFile/EmitterOptions --lowerToIr--> ir::Module
///     --PassManager (dedup, dead-index elim, lock plans)--> canonical IR
///     --Backend--> target text
///
/// compile() exposes the stages (IR kept for --dump-ir, optimization
/// toggle, backend choice); emitCpp() is the historical single-call
/// shape used by tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_COMPILER_H
#define RELC_CODEGEN_COMPILER_H

#include "codegen/Options.h"
#include "codegen/ir/IR.h"

#include <string>

namespace relc {

struct CompileControl {
  /// When false (--no-opt), optimization passes are skipped;
  /// canonicalization passes always run. The unoptimized output of the
  /// cpp backend matches the pre-IR emitter byte for byte.
  bool RunOptimizations = true;
  /// Backend name for createBackend(); compile() asserts it resolves.
  std::string BackendName = "cpp";
};

struct CompileResult {
  /// The backend's rendering of Ir.
  std::string Code;
  /// The post-pipeline IR (non-owning view of the decomposition passed
  /// to compile(); keep it alive while reading this).
  ir::Module Ir;
};

/// Runs the full pipeline: lower, default passes, backend.
/// Asserts that \p D is adequate, every requested shape is plannable,
/// and Control.BackendName names a registered backend.
CompileResult compile(const Decomposition &D, const EmitterOptions &Opts,
                      const CompileControl &Control = {});

/// Emits the complete C++ header text through the default pipeline.
/// Asserts that \p D is adequate and every requested shape is
/// plannable.
std::string emitCpp(const Decomposition &D, const EmitterOptions &Opts);

} // namespace relc

#endif // RELC_CODEGEN_COMPILER_H
