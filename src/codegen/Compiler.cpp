//===- codegen/Compiler.cpp - The relc pipeline, assembled --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"

#include "codegen/backend/Backend.h"
#include "codegen/ir/Lowering.h"
#include "codegen/ir/Passes.h"

#include <cassert>

using namespace relc;

CompileResult relc::compile(const Decomposition &D,
                            const EmitterOptions &Opts,
                            const CompileControl &Control) {
  CompileResult R;
  R.Ir = lowerToIr(D, Opts);
  ir::PassManager PM;
  ir::addDefaultPasses(PM);
  PM.run(R.Ir, Control.RunOptimizations);
  std::unique_ptr<Backend> B = createBackend(Control.BackendName);
  assert(B && "unknown backend name");
  R.Code = B->emit(R.Ir);
  return R;
}

std::string relc::emitCpp(const Decomposition &D,
                          const EmitterOptions &Opts) {
  return compile(D, Opts).Code;
}
