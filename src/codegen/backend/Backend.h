//===- codegen/backend/Backend.h - Emission backends ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emission side of the relc pipeline: a Backend renders a fully
/// lowered, pass-processed ir::Module into target text. Backends are
/// pure visitors over Module::Ops — every decision about which methods
/// exist, how duplicates merge, and how facade ops lock is stamped on
/// the IR before a backend ever sees it; a backend that re-derives any
/// of those is a bug.
///
/// `CppBackend` (CppBackend.h) is the first implementation, emitting
/// the standalone C++ header relc has always produced. New targets
/// register in createBackend()'s table.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_BACKEND_BACKEND_H
#define RELC_CODEGEN_BACKEND_BACKEND_H

#include "codegen/ir/IR.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace relc {

class Backend {
public:
  virtual ~Backend() = default;
  virtual std::string_view name() const = 0;
  /// Renders the module. Requires canonical IR: unique method names
  /// and a lock plan on every facade op (run ir::addDefaultPasses
  /// first; --no-opt still runs the canonicalization passes).
  virtual std::string emit(const ir::Module &M) = 0;
};

/// Backend registry: the named backend, or nullptr when unknown.
/// Known names: "cpp".
std::unique_ptr<Backend> createBackend(std::string_view Name);

/// Names accepted by createBackend, for CLI help and diagnostics.
std::vector<std::string_view> backendNames();

} // namespace relc

#endif // RELC_CODEGEN_BACKEND_BACKEND_H
