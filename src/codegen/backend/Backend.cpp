//===- codegen/backend/Backend.cpp - Emission backend registry ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/backend/Backend.h"

#include "codegen/backend/CppBackend.h"

using namespace relc;

std::unique_ptr<Backend> relc::createBackend(std::string_view Name) {
  if (Name == "cpp")
    return createCppBackend();
  return nullptr;
}

std::vector<std::string_view> relc::backendNames() { return {"cpp"}; }
