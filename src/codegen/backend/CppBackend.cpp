//===- codegen/backend/CppBackend.cpp - C++ header backend --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The static mirror of the dynamic engine: node structs instead of
// NodeInstance, concrete ds/ container members instead of EdgeMap
// virtual dispatch, and query/removal code specialized from the
// planner's chosen plans instead of the CPS interpreter in Exec.cpp.
//
// This backend is a visitor over ir::Module::Ops. It chooses syntax
// only: the op list is final (lowering + MethodDedup +
// DeadIndexElimination decided it) and every facade op arrives with a
// LockPlan (LockPlanPrecompute decided routing and stripe bounds).
// Nothing in here may invent a method or re-derive a routing decision.
//
//===----------------------------------------------------------------------===//

#include "codegen/backend/CppBackend.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <string>

using namespace relc;
using namespace relc::ir;

namespace {

/// Appends lines with block indentation.
class CodeWriter {
public:
  void line(const std::string &Text = "") {
    if (!Text.empty())
      for (unsigned I = 0; I != Indent; ++I)
        Out += "  ";
    Out += Text;
    Out += "\n";
  }
  void open(const std::string &Text) {
    line(Text);
    ++Indent;
  }
  void close(const std::string &Text = "}") {
    assert(Indent > 0 && "unbalanced close");
    --Indent;
    line(Text);
  }
  /// close-and-reopen for "} else {" style continuations.
  void chain(const std::string &Text) {
    close(Text);
    ++Indent;
  }

  std::string take() { return std::move(Out); }

private:
  std::string Out;
  unsigned Indent = 0;
};

class CppEmitter {
public:
  explicit CppEmitter(const ir::Module &M)
      : M(M), D(*M.Decomp), Cat(D.catalog()) {
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      for (PrimId U : D.unitsOf(Id))
        UnitOwner[U] = Id;
  }

  std::string run() {
    prologue();
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      emitNodeStruct(Id);
    emitMakers();
    emitDestroys();
    emitLifecycle();
    for (const MethodOp &Op : M.Ops)
      if (Op.Where == Layer::Sequential)
        emitSequentialOp(Op);
    if (M.RowScanPlan)
      emitScanRows();
    closeClass();
    if (M.hasFacade())
      emitConcurrentFacade();
    if (M.WireDispatch)
      emitWireDispatch();
    closeFile();
    return W.take();
  }

private:
  void emitSequentialOp(const MethodOp &Op) {
    assert(Op.Lock.Mode == LockPlan::None &&
           "sequential op with a facade lock plan");
    switch (Op.Kind) {
    case OpKind::Insert:
      emitInsert();
      return;
    case OpKind::Query:
      emitQuery(Op);
      return;
    case OpKind::RemoveBy:
      emitRemove(Op);
      return;
    case OpKind::UpdateBy:
      emitUpdate(Op.Key);
      return;
    case OpKind::LookupBy:
      emitLookup(Op);
      return;
    case OpKind::UpsertBy:
      emitUpsert(Op.Key);
      return;
    case OpKind::ParallelScan:
    case OpKind::TransactBy:
    case OpKind::Clear:
      break;
    }
    assert(false && "op kind is facade-only");
  }

  //===------------------------------------------------------------------===
  // Naming helpers.
  //===------------------------------------------------------------------===

  std::string nodeType(NodeId Id) const { return "Node_" + D.node(Id).Name; }

  std::string colList(ColumnSet Cols, const std::string &Prefix) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += ", ";
      Out += Prefix + Cat.name(C);
    }
    return Out;
  }

  std::string colsSuffix(ColumnSet Cols) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += "_";
      Out += Cat.name(C);
    }
    return Out;
  }

  std::string params(ColumnSet Cols, const std::string &Prefix) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += ", ";
      Out += "int64_t " + Prefix + Cat.name(C);
    }
    return Out;
  }

  /// The C++ key type of edge \p E (vectors index by size_t directly).
  std::string keyType(const MapEdge &E) const {
    if (E.Ds == DsKind::Vector)
      return "size_t";
    if (E.KeyCols.size() == 1)
      return "int64_t";
    return "std::array<int64_t, " + std::to_string(E.KeyCols.size()) + ">";
  }

  /// A key expression for edge \p E from per-column expressions.
  std::string keyExpr(const MapEdge &E,
                      const std::map<ColumnId, std::string> &Env) const {
    if (E.KeyCols.size() == 1) {
      const std::string &V = Env.at(E.KeyCols.first());
      return E.Ds == DsKind::Vector ? "toIndex(" + V + ")" : V;
    }
    std::string Out = keyType(E) + "{";
    bool First = true;
    for (ColumnId C : E.KeyCols) {
      if (!First)
        Out += ", ";
      Out += Env.at(C);
      First = false;
    }
    return Out + "}";
  }

  std::string edgeMember(EdgeId E) const { return "e" + std::to_string(E); }

  /// Cell-per-entry containers allocate through the class arena
  /// (intrusive kinds store no cells; vectors use amortized
  /// std::vector storage).
  static bool dsUsesArenaCells(DsKind K) {
    return K == DsKind::DList || K == DsKind::HashTable || K == DsKind::Btree;
  }

  /// The call that allocates and wires up a fresh instance of \p Id
  /// (see emitMakers).
  std::string makeNodeCall(NodeId Id) const {
    return "make" + nodeType(Id) + "()";
  }

  std::string unitField(PrimId U, ColumnId C) const {
    return "u" + std::to_string(U) + "_" + Cat.name(C);
  }

  std::string containerType(EdgeId Id) const {
    const MapEdge &E = D.edge(Id);
    std::string Traits = "TraitsE" + std::to_string(Id);
    switch (E.Ds) {
    case DsKind::DList:
      return "relc::DListMap<" + Traits + ">";
    case DsKind::HashTable:
      return "relc::HashMap<" + Traits + ">";
    case DsKind::Btree:
      return "relc::AvlMap<" + Traits + ">";
    case DsKind::Vector:
      return "relc::VectorMap<" + nodeType(E.To) + ">";
    case DsKind::IList:
      return "relc::IntrusiveList<" + Traits + ">";
    case DsKind::ITree:
      return "relc::IntrusiveAvl<" + Traits + ">";
    }
    assert(false && "unknown DsKind");
    return "";
  }

  static std::string upper(std::string S) {
    for (char &C : S)
      C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    return S;
  }

  /// The incoming edge of \p Id with the cheapest point lookup (the
  /// existence probe in the generated insert).
  EdgeId cheapestIncomingEdge(NodeId Id) const {
    auto Rank = [](DsKind K) {
      switch (K) {
      case DsKind::Vector:
      case DsKind::HashTable:
        return 0;
      case DsKind::Btree:
      case DsKind::ITree:
        return 1;
      case DsKind::DList:
      case DsKind::IList:
        return 2;
      }
      return 3;
    };
    EdgeId Best = D.incoming(Id).front();
    for (EdgeId E : D.incoming(Id))
      if (Rank(D.edge(E).Ds) < Rank(D.edge(Best).Ds))
        Best = E;
    return Best;
  }

  //===------------------------------------------------------------------===
  // Skeleton.
  //===------------------------------------------------------------------===

  void prologue() {
    W.line("// Generated by RELC for specification " + D.spec()->str());
    W.line("// Decomposition: " + D.canonicalString(/*IncludeDs=*/true));
    W.line("// Do not edit.");
    W.line("#ifndef RELCGEN_" + upper(M.ClassName) + "_H");
    W.line("#define RELCGEN_" + upper(M.ClassName) + "_H");
    W.line();
    W.line("#include \"ds/AvlMap.h\"");
    W.line("#include \"ds/DListMap.h\"");
    W.line("#include \"ds/HashMap.h\"");
    W.line("#include \"ds/IntrusiveAvl.h\"");
    W.line("#include \"ds/IntrusiveList.h\"");
    W.line("#include \"ds/VectorMap.h\"");
    W.line("#include \"support/Arena.h\"");
    if (M.hasFacade()) {
      W.line("#include \"concurrent/BoundedQueue.h\"");
      W.line("#include \"concurrent/Epoch.h\"");
      W.line("#include \"concurrent/ScanPool.h\"");
      W.line("#include \"concurrent/StripedLock.h\"");
    }
    W.line("#include \"support/Hashing.h\"");
    W.line();
    W.line("#include <array>");
    if (M.hasFacade())
      W.line("#include <atomic>");
    W.line("#include <cassert>");
    W.line("#include <cstddef>");
    W.line("#include <cstdint>");
    if (M.hasFacade())
      W.line("#include <memory>");
    if (M.hasTransactions())
      W.line("#include <type_traits>");
    W.line("#include <vector>");
    W.line();
    W.open("namespace " + M.Namespace + " {");
    W.line();
    W.open("class " + M.ClassName + " {");
    W.line("public:");
    W.line("  " + M.ClassName + "(const " + M.ClassName + " &) = delete;");
    W.line("  " + M.ClassName + " &operator=(const " + M.ClassName +
           " &) = delete;");
    W.line("  size_t size() const { return Size; }");
    W.line("  bool empty() const { return Size == 0; }");
    W.line();
    W.line("private:");
    W.open("  static size_t toIndex(int64_t V) {");
    W.line("assert(V >= 0 && \"vector-mapped keys must be non-negative\");");
    W.line("return static_cast<size_t>(V);");
    W.close("}");
    W.line("  static size_t hashKey(int64_t K) {");
    W.line("    return relc::hashMix64(static_cast<uint64_t>(K));");
    W.line("  }");
    W.line("  template <size_t N>");
    W.open("  static size_t hashKey(const std::array<int64_t, N> &K) {");
    W.line("size_t H = 0;");
    W.line("for (int64_t V : K)");
    W.line("  H = relc::hashCombine(H, "
           "relc::hashMix64(static_cast<uint64_t>(V)));");
    W.line("return H;");
    W.close("}");
  }

  void closeClass() {
    W.line();
    W.line("  /// Backs every node and container cell of this instance;");
    W.line("  /// one arena per instance keeps shard allocation private");
    W.line("  /// (see support/Arena.h).");
    W.line("  relc::SlabArena Arena;");
    W.line("  " + nodeType(D.root()) + " *Root;");
    W.line("  size_t Size = 0;");
    W.close("};");
  }

  void closeFile() {
    W.line();
    W.close("} // namespace " + M.Namespace);
    W.line();
    W.line("#endif");
  }

  void emitNodeStruct(NodeId Id) {
    W.line();
    // Traits for each outgoing edge; target node types are complete
    // here because children precede parents in let order.
    for (EdgeId E : D.outgoing(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (Edge.Ds == DsKind::Vector)
        continue;
      W.open("  struct TraitsE" + std::to_string(E) + " {");
      W.line("using KeyT = " + keyType(Edge) + ";");
      W.line("using NodeT = " + nodeType(Edge.To) + ";");
      W.line("static bool equal(const KeyT &A, const KeyT &B) "
             "{ return A == B; }");
      W.line("static bool less(const KeyT &A, const KeyT &B) "
             "{ return A < B; }");
      W.line("static size_t hash(const KeyT &K) { return hashKey(K); }");
      if (dsSupportsEraseByNode(Edge.Ds))
        W.line("static relc::MapHook<NodeT, KeyT> &hook(NodeT *N, unsigned) "
               "{ return N->h" +
               std::to_string(Edge.HookSlot) + "; }");
      W.close("};");
    }

    W.open("  struct " + nodeType(Id) + " {");
    // The bound valuation, as NodeInstance stores it: read by unit
    // steps (the extended (QUNIT) rule) and kept for symmetry with the
    // dynamic engine.
    for (ColumnId C : D.node(Id).Bound)
      W.line("int64_t b_" + Cat.name(C) + ";");
    for (PrimId U : D.unitsOf(Id))
      for (ColumnId C : D.prim(U).Cols)
        W.line("int64_t " + unitField(U, C) + ";");
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (!dsSupportsEraseByNode(Edge.Ds))
        continue;
      W.line("relc::MapHook<" + nodeType(Id) + ", " + keyType(Edge) + "> h" +
             std::to_string(Edge.HookSlot) + ";");
    }
    for (EdgeId E : D.outgoing(Id)) {
      const MapEdge &Edge = D.edge(E);
      std::string Init;
      if (dsSupportsEraseByNode(Edge.Ds))
        Init = "{" + std::to_string(Edge.HookSlot) + "}";
      W.line(containerType(E) + " " + edgeMember(E) + Init + ";");
    }
    W.line("unsigned Ref = 0;");
    // Hooked nodes reset (not destroy) their hooks: an arena-reset
    // sweep may destroy this node before the parent whose intrusive
    // container unlinks through these hooks, and the unlink must land
    // on a valid empty hook.
    std::string HookResets;
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (!dsSupportsEraseByNode(Edge.Ds))
        continue;
      std::string H = "h" + std::to_string(Edge.HookSlot);
      HookResets += " " + H + " = decltype(" + H + ")();";
    }
    if (!HookResets.empty())
      W.line("~" + nodeType(Id) + "() {" + HookResets + " }");
    W.close("};");
  }

  /// One maker per node type: arena-allocates the instance and binds
  /// its cell-based containers to the class arena.
  void emitMakers() {
    for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
      W.line();
      W.open("  " + nodeType(Id) + " *make" + nodeType(Id) + "() {");
      W.line("auto *N = Arena.create<" + nodeType(Id) + ">();");
      for (EdgeId E : D.outgoing(Id))
        if (dsUsesArenaCells(D.edge(E).Ds))
          W.line("N->" + edgeMember(E) + ".setArena(relc::ArenaRef(&Arena));");
      W.line("return N;");
      W.close("}");
    }
  }

  void emitDestroys() {
    // In-class member bodies may call members defined later, so the
    // destroy/release pairs can be emitted in any order.
    for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
      W.line();
      W.open("  void destroy(" + nodeType(Id) + " *N) {");
      if (D.outgoing(Id).empty()) {
        W.line("Arena.destroy(N);");
        W.close("}");
      } else {
        // Collect children before the containers (whose destructors
        // unlink intrusive hooks) die, then release them after N is
        // gone — mirroring InstanceGraph::destroy.
        for (EdgeId E : D.outgoing(Id)) {
          const MapEdge &Edge = D.edge(E);
          std::string CT = nodeType(Edge.To);
          W.line("std::vector<" + CT + " *> c" + std::to_string(E) + ";");
          W.open("N->" + edgeMember(E) + ".forEach([&](const auto &, " + CT +
                 " *Child) {");
          W.line("c" + std::to_string(E) + ".push_back(Child);");
          W.line("return true;");
          W.close("});");
        }
        W.line("Arena.destroy(N);");
        for (EdgeId E : D.outgoing(Id)) {
          W.line("for (auto *Child : c" + std::to_string(E) + ")");
          W.line("  release(Child);");
        }
        W.close("}");
      }
      W.line("  void release(" + nodeType(Id) +
             " *N) { if (--N->Ref == 0) destroy(N); }");
    }
  }

  void emitLifecycle() {
    W.line();
    W.line("public:");
    W.line("  " + M.ClassName + "() { Root = " + makeNodeCall(D.root()) +
           "; Root->Ref = 1; }");
    // Teardown and clear are O(slabs): one arena sweep destroys every
    // live node (hook resets keep the sweep order-independent) and
    // rewinds the slabs, instead of a refcount-driven graph cascade.
    W.line("  ~" + M.ClassName + "() { Arena.reset(); }");
    W.open("  void clear() {");
    W.line("Arena.reset();");
    W.line("Root = " + makeNodeCall(D.root()) + ";");
    W.line("Root->Ref = 1;");
    W.line("Size = 0;");
    W.close("}");
    W.line("  /// Allocator counters of this instance's private arena.");
    W.line("  relc::ArenaStats arenaStats() const { return Arena.stats(); }");
  }

  //===------------------------------------------------------------------===
  // insert (Section 4.4, specialized).
  //===------------------------------------------------------------------===

  void emitInsert() {
    ColumnSet All = D.spec()->columns();
    W.line();
    W.line("  /// insert r t; returns true if the relation changed.");
    W.open("  bool insert(" + params(All, "v_") + ") {");
    std::map<ColumnId, std::string> Env;
    for (ColumnId C : All)
      Env[C] = "v_" + Cat.name(C);

    W.line("bool Changed = false;");
    for (NodeId Id : D.topoOrder()) {
      std::string Var = "n_" + D.node(Id).Name;
      if (Id == D.root()) {
        W.line(nodeType(Id) + " *" + Var + " = Root;");
        continue;
      }
      // One probe on the cheapest incoming edge decides existence
      // (well-formedness keeps all incoming containers in lockstep; a
      // fresh parent's empty container gives the same verdict — see
      // dinsert in runtime/Mutators.cpp).
      EdgeId ProbeE = cheapestIncomingEdge(Id);
      const MapEdge &Probe = D.edge(ProbeE);
      W.line(nodeType(Id) + " *" + Var + " = n_" +
             D.node(Probe.From).Name + "->" + edgeMember(ProbeE) +
             ".lookup(" + keyExpr(Probe, Env) + ");");
      W.open("if (!" + Var + ") {");
      W.line(Var + " = " + makeNodeCall(Id) + ";");
      for (ColumnId C : D.node(Id).Bound)
        W.line(Var + "->b_" + Cat.name(C) + " = " + Env.at(C) + ";");
      for (PrimId U : D.unitsOf(Id))
        for (ColumnId C : D.prim(U).Cols)
          W.line(Var + "->" + unitField(U, C) + " = " + Env.at(C) + ";");
      for (EdgeId E : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(E);
        std::string Parent = "n_" + D.node(Edge.From).Name;
        W.line(Parent + "->" + edgeMember(E) + ".insert(" +
               keyExpr(Edge, Env) + ", " + Var + ");");
        W.line("++" + Var + "->Ref;");
      }
      W.line("Changed = true;");
      if (!D.unitsOf(Id).empty()) {
        W.chain("} else {");
        // Lemma 4(a)'s precondition: an existing instance must already
        // carry exactly these unit values.
        for (PrimId U : D.unitsOf(Id))
          for (ColumnId C : D.prim(U).Cols)
            W.line("assert(" + Var + "->" + unitField(U, C) + " == " +
                   Env.at(C) +
                   " && \"insert violates the functional dependencies\");");
        W.close("}");
      } else {
        W.close("}");
      }
    }
    W.line("if (Changed) ++Size;");
    W.line("return Changed;");
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // Query emission: CPS over plan steps, the static twin of Exec.cpp.
  //===------------------------------------------------------------------===

  using Env = std::map<ColumnId, std::string>;
  using Cont = std::function<void(const Env &)>;

  void emitQuery(const MethodOp &Q) {
    assert(Q.Plan && "query op lowered without a plan");
    const QueryPlan &Plan = *Q.Plan;
    W.line();
    W.line("  /// " + Q.Name + ": plan " + Plan.str());
    std::string Params = params(Q.InputCols, "q_");
    if (!Params.empty())
      Params += ", ";
    W.open("  template <typename FnT> void " + Q.Name + "(" + Params +
           "FnT &&Emit) const {");
    Env E;
    for (ColumnId C : Q.InputCols)
      E[C] = "q_" + Cat.name(C);
    emitStep(Plan, Plan.Root, "Root", E, [&](const Env &Final) {
      std::string Args;
      for (ColumnId C : Q.OutputCols) {
        if (!Args.empty())
          Args += ", ";
        Args += Final.at(C);
      }
      W.line("Emit(" + Args + ");");
    });
    W.close("}");
  }

  void emitStep(const QueryPlan &Plan, PlanStepId Id,
                const std::string &NodeVar, const Env &E, const Cont &K) {
    const PlanStep &S = Plan.Steps[Id];
    switch (S.Kind) {
    case PlanKind::Unit: {
      // Filter unit and bound columns already fixed by the binding;
      // bind the rest (the extended (QUNIT) rule — bound fields serve
      // columns not on the traversed path, e.g. `state` via Fig. 2's
      // left path).
      Env E2 = E;
      std::string Guard;
      auto handleColumn = [&](ColumnId C, const std::string &Field) {
        auto It = E.find(C);
        if (It != E.end()) {
          if (!Guard.empty())
            Guard += " && ";
          Guard += Field + " == " + It->second;
        } else if (!E2.count(C)) {
          E2[C] = Field;
        }
      };
      NodeId Owner = UnitOwner.at(S.Prim);
      for (ColumnId C : D.node(Owner).Bound)
        handleColumn(C, NodeVar + "->b_" + Cat.name(C));
      for (ColumnId C : D.prim(S.Prim).Cols)
        handleColumn(C, NodeVar + "->" + unitField(S.Prim, C));
      if (Guard.empty()) {
        K(E2);
        return;
      }
      W.open("if (" + Guard + ") {");
      K(E2);
      W.close("}");
      return;
    }
    case PlanKind::Lookup: {
      EdgeId Eg = D.prim(S.Prim).Edge;
      const MapEdge &Edge = D.edge(Eg);
      std::string Var = "n" + std::to_string(Id);
      W.line("auto *" + Var + " = " + NodeVar + "->" + edgeMember(Eg) +
             ".lookup(" + keyExpr(Edge, E) + ");");
      W.open("if (" + Var + ") {");
      emitStep(Plan, S.Child0, Var, E, K);
      W.close("}");
      return;
    }
    case PlanKind::Scan: {
      EdgeId Eg = D.prim(S.Prim).Edge;
      const MapEdge &Edge = D.edge(Eg);
      std::string KeyVar = "k" + std::to_string(Id);
      std::string Var = "n" + std::to_string(Id);
      W.open(NodeVar + "->" + edgeMember(Eg) + ".forEach([&](const auto &" +
             KeyVar + ", " + nodeType(Edge.To) + " *" + Var + ") {");
      // Subplans over empty units never touch the child node.
      W.line("(void)" + Var + ";");
      // Bind fresh key columns; filter ones the binding already fixes
      // (this is what keeps joins and A ⊆ B queries faithful, Lemma 2).
      Env E2 = E;
      std::string Guard;
      unsigned Index = 0;
      for (ColumnId C : Edge.KeyCols) {
        std::string Expr;
        if (Edge.Ds == DsKind::Vector)
          Expr = "static_cast<int64_t>(" + KeyVar + ")";
        else if (Edge.KeyCols.size() == 1)
          Expr = KeyVar;
        else
          Expr = KeyVar + "[" + std::to_string(Index) + "]";
        auto It = E.find(C);
        if (It != E.end()) {
          if (!Guard.empty())
            Guard += " && ";
          Guard += Expr + " == " + It->second;
        } else {
          E2[C] = Expr;
        }
        ++Index;
      }
      if (!Guard.empty())
        W.open("if (" + Guard + ") {");
      emitStep(Plan, S.Child0, Var, E2, K);
      if (!Guard.empty())
        W.close("}");
      W.line("return true;");
      W.close("});");
      return;
    }
    case PlanKind::Lr:
      emitStep(Plan, S.Child0, NodeVar, E, K);
      return;
    case PlanKind::Join:
      // Nested execution: the second query runs once per binding the
      // first produces.
      emitStep(Plan, S.Child0, NodeVar, E, [&](const Env &E1) {
        emitStep(Plan, S.Child1, NodeVar, E1, K);
      });
      return;
    }
    assert(false && "unknown PlanKind");
  }

  /// The full-row scan behind the facade's snapshot machinery: emitted
  /// from the Module-level RowScanPlan (never a MethodOp, so it exists
  /// identically under --no-opt), used by the COW clone in writable()
  /// and by Snapshot::scanRows.
  void emitScanRows() {
    assert(M.RowScanPlan && "scanRows without a lowered row-scan plan");
    const QueryPlan &Plan = *M.RowScanPlan;
    ColumnSet All = D.spec()->columns();
    W.line();
    W.line("  /// Visits every row once, all columns in ascending order; the");
    W.line("  /// concurrent facade's snapshot machinery clones shards");
    W.line("  /// through this scan. Plan " + Plan.str());
    W.open("  template <typename FnT> void scanRows(FnT &&Emit) const {");
    emitStep(Plan, Plan.Root, "Root", Env(), [&](const Env &Final) {
      std::string Args;
      for (ColumnId C : All) {
        if (!Args.empty())
          Args += ", ";
        Args += Final.at(C);
      }
      W.line("Emit(" + Args + ");");
    });
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // remove_by_<key> / update_by_<key> (Section 4.5, specialized).
  //===------------------------------------------------------------------===

  void emitRemove(const MethodOp &Op) {
    ColumnSet Key = Op.Key;
    ColumnSet All = D.spec()->columns();
    assert(Op.Plan && Op.RemoveCut &&
           "remove op lowered without a plan and cut");
    const QueryPlan &Plan = *Op.Plan;
    const Cut &C = *Op.RemoveCut;

    W.line();
    W.line("  /// remove r s for key pattern {" + colsSuffix(Key) +
           "}; returns true if a tuple was removed.");
    W.open("  bool remove_by_" + colsSuffix(Key) + "(" + params(Key, "q_") +
           ") {");

    // 1. Resolve the full tuple (the pattern is a key: at most one).
    W.line("bool Found = false;");
    for (ColumnId Col : All.minus(Key))
      W.line("int64_t c_" + Cat.name(Col) + " = 0;");
    Env E;
    for (ColumnId Col : Key)
      E[Col] = "q_" + Cat.name(Col);
    emitStep(Plan, Plan.Root, "Root", E, [&](const Env &Final) {
      W.line("Found = true;");
      for (ColumnId Col : All.minus(Key))
        W.line("c_" + Cat.name(Col) + " = " + Final.at(Col) + ";");
    });
    W.line("if (!Found) return false;");
    // Columns resolved for navigation may go unused when every edge on
    // the removal path is keyed by the pattern itself.
    for (ColumnId Col : All.minus(Key))
      W.line("(void)c_" + Cat.name(Col) + ";");

    Env Full;
    for (ColumnId Col : Key)
      Full[Col] = "q_" + Cat.name(Col);
    for (ColumnId Col : All.minus(Key))
      Full[Col] = "c_" + Cat.name(Col);

    // 2. Navigate the X instances along the tuple's path (Fig. 10).
    for (NodeId Id : D.topoOrder()) {
      if (C.inY(Id))
        continue;
      std::string Var = "x_" + D.node(Id).Name;
      if (Id == D.root()) {
        W.line(nodeType(Id) + " *" + Var + " = Root;");
        continue;
      }
      W.line(nodeType(Id) + " *" + Var + " = nullptr;");
      for (EdgeId Eg : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(Eg);
        W.line("if (!" + Var + ") " + Var + " = x_" +
               D.node(Edge.From).Name + "->" + edgeMember(Eg) + ".lookup(" +
               keyExpr(Edge, Full) + ");");
      }
      W.line("assert(" + Var + " && \"X instance missing\");");
    }

    // 3. Break the crossing edges; the first break per Y node resolves
    //    the child, later breaks reuse it (eraseNode when intrusive).
    std::map<NodeId, bool> YResolved;
    for (EdgeId Eg : C.CrossingEdges) {
      const MapEdge &Edge = D.edge(Eg);
      std::string Child = "y_" + D.node(Edge.To).Name;
      std::string From = "x_" + D.node(Edge.From).Name;
      if (!YResolved[Edge.To]) {
        W.line(nodeType(Edge.To) + " *" + Child + " = " + From + "->" +
               edgeMember(Eg) + ".erase(" + keyExpr(Edge, Full) + ");");
        W.line("assert(" + Child + " && \"crossing entry missing\");");
        YResolved[Edge.To] = true;
      } else if (dsSupportsEraseByNode(Edge.Ds)) {
        W.line(From + "->" + edgeMember(Eg) + ".eraseNode(" + Child + ");");
      } else {
        W.line(From + "->" + edgeMember(Eg) + ".erase(" +
               keyExpr(Edge, Full) + ");");
      }
      W.line("release(" + Child + ");");
    }

    // 4. Clean up interior X nodes now devoid of children (children
    //    first; the root always stays).
    for (NodeId Id = 0; Id + 1 < D.numNodes(); ++Id) {
      if (C.inY(Id) || D.outgoing(Id).empty())
        continue;
      std::string Var = "x_" + D.node(Id).Name;
      std::string EmptyCheck;
      for (EdgeId Eg : D.outgoing(Id)) {
        if (!EmptyCheck.empty())
          EmptyCheck += " || ";
        EmptyCheck += Var + "->" + edgeMember(Eg) + ".empty()";
      }
      W.open("if (" + EmptyCheck + ") {");
      for (EdgeId Eg : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(Eg);
        std::string From = "x_" + D.node(Edge.From).Name;
        if (dsSupportsEraseByNode(Edge.Ds))
          W.line(From + "->" + edgeMember(Eg) + ".eraseNode(" + Var + ");");
        else
          W.line(From + "->" + edgeMember(Eg) + ".erase(" +
                 keyExpr(Edge, Full) + ");");
        W.line("release(" + Var + ");");
      }
      W.close("}");
    }

    W.line("--Size;");
    W.line("return true;");
    W.close("}");
  }

  void emitUpdate(ColumnSet Key) {
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    W.line();
    W.line("  /// update r s u for key pattern {" + colsSuffix(Key) +
           "}, replacing every non-key column (remove + reinsert,");
    W.line("  /// semantically equal per Section 4.5); returns true if a");
    W.line("  /// tuple matched.");
    std::string Params = params(Key, "q_");
    if (!Rest.empty())
      Params += ", " + params(Rest, "v_");
    W.open("  bool update_by_" + colsSuffix(Key) + "(" + Params + ") {");
    W.line("if (!remove_by_" + colsSuffix(Key) + "(" + colList(Key, "q_") +
           ")) return false;");
    W.line("insert(" + mixedArgs(Key, "q_", "v_") + ");");
    W.line("return true;");
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // lookup_by_<key> / upsert_by_<key>: the atomic read-modify-write
  // primitive, specialized (the static twin of
  // SynthesizedRelation::upsert).
  //===------------------------------------------------------------------===

  /// "int64_t &p_a, int64_t &p_b" over \p Cols.
  std::string refParams(ColumnSet Cols, const std::string &Prefix) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += ", ";
      Out += "int64_t &" + Prefix + Cat.name(C);
    }
    return Out;
  }

  /// Full-tuple argument list in column order: key columns through
  /// \p KeyPrefix, the rest through \p RestPrefix.
  std::string mixedArgs(ColumnSet Key, const std::string &KeyPrefix,
                        const std::string &RestPrefix) const {
    std::string Out;
    for (ColumnId C : D.spec()->columns()) {
      if (!Out.empty())
        Out += ", ";
      Out += (Key.contains(C) ? KeyPrefix : RestPrefix) + Cat.name(C);
    }
    return Out;
  }

  void emitLookup(const MethodOp &Op) {
    ColumnSet Key = Op.Key;
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    assert(Op.Plan && "lookup op lowered without a plan");
    const QueryPlan &Plan = *Op.Plan;

    W.line();
    W.line("  /// Resolves the non-key columns of the tuple matching key");
    W.line("  /// pattern {" + colsSuffix(Key) +
           "} into the out-params (ascending column");
    W.line("  /// order); returns false (out-params untouched) if none.");
    std::string Params = params(Key, "q_");
    if (!Rest.empty())
      Params += ", " + refParams(Rest, "c_");
    W.open("  bool lookup_by_" + colsSuffix(Key) + "(" + Params +
           ") const {");
    W.line("bool Found = false;");
    Env E;
    for (ColumnId Col : Key)
      E[Col] = "q_" + Cat.name(Col);
    emitStep(Plan, Plan.Root, "Root", E, [&](const Env &Final) {
      W.line("Found = true;");
      for (ColumnId Col : Rest)
        W.line("c_" + Cat.name(Col) + " = " + Final.at(Col) + ";");
    });
    W.line("return Found;");
    W.close("}");
  }

  void emitUpsert(ColumnSet Key) {
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    W.line();
    W.line("  /// Atomic read-modify-write for key pattern {" +
           colsSuffix(Key) + "}: calls");
    W.line("  /// Fn(bool Found, int64_t &...) with the current non-key "
           "values in");
    W.line("  /// ascending column order (zeros when absent, Found == "
           "false); Fn");
    W.line("  /// mutates them and the tuple is reinserted (or inserted "
           "fresh).");
    W.line("  /// Returns true if a new tuple was inserted.");
    W.open("  template <typename FnT> bool upsert_by_" + colsSuffix(Key) +
           "(" + params(Key, "q_") + ", FnT &&Fn) {");
    for (ColumnId C : Rest)
      W.line("int64_t c_" + Cat.name(C) + " = 0;");
    std::string LookupArgs = colList(Key, "q_");
    if (!Rest.empty())
      LookupArgs += ", " + colList(Rest, "c_");
    W.line("bool Found = lookup_by_" + colsSuffix(Key) + "(" + LookupArgs +
           ");");
    std::string FnArgs = "Found";
    if (!Rest.empty())
      FnArgs += ", " + colList(Rest, "c_");
    W.line("Fn(" + FnArgs + ");");
    W.line("if (Found)");
    W.line("  remove_by_" + colsSuffix(Key) + "(" + colList(Key, "q_") +
           ");");
    W.line("insert(" + mixedArgs(Key, "q_", "c_") + ");");
    W.line("return !Found;");
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // The sharded concurrent facade (the static mirror of
  // src/concurrent/ConcurrentRelation; see docs/CONCURRENCY.md).
  //===------------------------------------------------------------------===

  void emitConcurrentFacade() {
    ColumnSet All = D.spec()->columns();
    ColumnId SC = M.ShardColumn;
    assert(SC < Cat.size() && "shard column is not a column");
    std::string SCName = Cat.name(SC);
    std::string Seq = M.ClassName;
    std::string Fac = M.ClassName + "_concurrent";

    W.line();
    W.line("/// Sharded thread-safe facade over " + Seq + ": the relation "
           "is hash-");
    W.line("/// partitioned across NumShards " + Seq +
           " sub-instances by column");
    W.line("/// '" + SCName + "', one reader-writer stripe per shard. "
           "Operations whose");
    W.line("/// pattern binds the shard column take exactly one stripe; "
           "the rest");
    W.line("/// fan out (reads per shard in turn, mutations under all "
           "writer locks");
    W.line("/// in ascending order). Reads are wait-free on the common "
           "path: an");
    W.line("/// epoch read-side section (relc::EpochGuard) plus a check "
           "of the");
    W.line("/// shard's writer gate replaces the reader lock, which is "
           "taken only");
    W.line("/// while a writer holds the gate. Writers drain overlapping "
           "sections");
    W.line("/// with relc::EpochWriterFence before mutating. The lock "
           "discipline,");
    W.line("/// visibility guarantees, and the no-reentrant-callback rule "
           "mirror the");
    W.line("/// interpreted relc::ConcurrentRelation (docs/CONCURRENCY.md).");
    W.line("/// Shard state is copy-on-write: snapshot() freezes the "
           "current shard");
    W.line("/// set behind a refcounted handle in O(NumShards), writers "
           "clone a");
    W.line("/// pinned shard before touching it, and frozen shards are "
           "reclaimed");
    W.line("/// through the process epoch manager once unpinned.");
    W.open("class " + Fac + " {");
    W.line("public:");
    W.line("  static constexpr unsigned NumShards = " +
           std::to_string(M.Shards) + ";");
    W.open("  " + Fac + "() {");
    W.line("for (auto &S : Shards)");
    W.line("  S = std::make_shared<" + Seq + ">();");
    W.line("for (auto &P : Pins)");
    W.line("  P = std::make_shared<std::atomic<size_t>>(0);");
    W.close("}");
    W.line("  " + Fac + "(const " + Fac + " &) = delete;");
    W.line("  " + Fac + " &operator=(const " + Fac + " &) = delete;");
    W.line("  /// Lock-free; exact whenever it does not race a mutation.");
    W.line("  size_t size() const { return Size.load("
           "std::memory_order_relaxed); }");
    W.line("  bool empty() const { return size() == 0; }");
    W.line("  /// Direct shard access for tests and benches; the caller is");
    W.line("  /// responsible for exclusion.");
    W.line("  const " + Seq + " &shard(unsigned I) const "
           "{ return *Shards[I]; }");

    for (const MethodOp &Op : M.Ops) {
      if (Op.Where != Layer::Facade)
        continue;
      assert(Op.Lock.Mode != LockPlan::Unset &&
             "facade op without a lock plan — run the pass pipeline");
      switch (Op.Kind) {
      case OpKind::Insert:
        // insert: full tuples always bind the shard column.
        W.line();
        W.line("  /// insert r t, routed to the owning shard under its "
               "writer lock.");
        W.open("  bool insert(" + params(All, "v_") + ") {");
        W.line("unsigned S = shardOf(v_" + SCName + ");");
        W.line("auto Lock = Locks.exclusive(S);");
        W.line("relc::EpochWriterFence Fence(Gates[S]);");
        W.line("bool Changed = writable(S).insert(" + colList(All, "v_") +
               ");");
        W.line("if (Changed)");
        W.line("  Size.fetch_add(1, std::memory_order_relaxed);");
        W.line("return Changed;");
        W.close("}");
        break;
      case OpKind::Query:
        emitFacadeQuery(Op, SCName);
        break;
      case OpKind::ParallelScan:
        emitFacadeParallel(Op);
        break;
      case OpKind::RemoveBy:
        emitFacadeRemove(Op, SCName);
        break;
      case OpKind::UpdateBy:
        emitFacadeUpdate(Op, SCName);
        break;
      case OpKind::UpsertBy:
        emitFacadeUpsert(Op, SCName);
        break;
      case OpKind::TransactBy:
        emitFacadeTransact(Op, SCName);
        break;
      case OpKind::Clear:
        W.line();
        W.line("  /// Empties every shard (all writer locks). Shards pinned "
               "by a");
        W.line("  /// snapshot handle are replaced fresh and retired, not "
               "reset");
        W.line("  /// in place.");
        W.open("  void clear() {");
        W.line("relc::AllShardsGuard Guard(Locks);");
        W.line("relc::EpochWriterFence Fence = fenceAll();");
        W.open("for (unsigned S = 0; S != NumShards; ++S) {");
        W.open("if (Pins[S]->load(std::memory_order_acquire) == 0) {");
        W.line("Shards[S]->clear();");
        W.line("continue;");
        W.close("}");
        W.line("retireShard(std::move(Shards[S]));");
        W.line("Shards[S] = std::make_shared<" + Seq + ">();");
        W.line("Pins[S] = std::make_shared<std::atomic<size_t>>(0);");
        W.close("}");
        W.line("Size.store(0, std::memory_order_relaxed);");
        W.close("}");
        break;
      case OpKind::LookupBy:
        assert(false && "lookup_by_* is never a facade op");
        break;
      }
    }

    W.line();
    W.line("  /// A consistent point-in-time view of the whole relation: "
           "the");
    W.line("  /// shard set frozen by snapshot(). Holding a handle pins "
           "the");
    W.line("  /// frozen shards — writers copy-on-write around them — and");
    W.line("  /// reads against it need no locks at all.");
    W.open("  class Snapshot {");
    W.line("public:");
    W.line("  Snapshot() = default;");
    W.line("  /// Copies share the pinned generation: the source already "
           "holds");
    W.line("  /// every count >= 1, so relaxed increments suffice.");
    W.open("  Snapshot(const Snapshot &O) : Count(O.Count) {");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.line("Shards[S] = O.Shards[S];");
    W.line("Pins[S] = O.Pins[S];");
    W.line("if (Pins[S])");
    W.line("  Pins[S]->fetch_add(1, std::memory_order_relaxed);");
    W.close("}");
    W.close("}");
    W.open("  Snapshot &operator=(const Snapshot &O) {");
    W.open("if (this != &O) {");
    W.line("Snapshot Tmp(O);");
    W.line("*this = std::move(Tmp);");
    W.close("}");
    W.line("return *this;");
    W.close("}");
    W.line("  Snapshot(Snapshot &&O) noexcept = default;");
    W.open("  Snapshot &operator=(Snapshot &&O) noexcept {");
    W.open("if (this != &O) {");
    W.line("unpinAll();");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.line("Shards[S] = std::move(O.Shards[S]);");
    W.line("Pins[S] = std::move(O.Pins[S]);");
    W.close("}");
    W.line("Count = O.Count;");
    W.close("}");
    W.line("return *this;");
    W.close("}");
    W.line("  ~Snapshot() { unpinAll(); }");
    W.line("  bool valid() const { return Shards[0] != nullptr; }");
    W.line("  size_t size() const { return Count; }");
    W.line("  bool empty() const { return Count == 0; }");
    W.line("  const " + Seq + " &shard(unsigned I) const "
           "{ return *Shards[I]; }");
    W.line("  /// Visits every row (ascending column order), shard by "
           "shard.");
    W.open("  template <typename FnT> void scanRows(FnT &&Emit) const {");
    W.line("for (const auto &S : Shards)");
    W.line("  S->scanRows(Emit);");
    W.close("}");
    W.line();
    W.line("private:");
    W.line("  friend class " + Fac + ";");
    W.line("  /// Release-decrements pair with writable()'s acquire probe: "
           "a");
    W.line("  /// writer that reads zero happens-after every read this "
           "handle");
    W.line("  /// made of the pinned state.");
    W.open("  void unpinAll() {");
    W.line("for (const auto &P : Pins)");
    W.line("  if (P)");
    W.line("    P->fetch_sub(1, std::memory_order_release);");
    W.close("}");
    W.line("  std::shared_ptr<const " + Seq + "> Shards[NumShards];");
    W.line("  std::shared_ptr<std::atomic<size_t>> Pins[NumShards];");
    W.line("  size_t Count = 0;");
    W.close("};");
    W.line();
    W.line("  /// O(NumShards), no per-tuple work: under a brief all-stripe");
    W.line("  /// SHARED acquisition the shard pointers are copied into the");
    W.line("  /// handle. Writers landing afterwards clone pinned shards");
    W.line("  /// before mutating, so the view never moves; the frozen "
           "state");
    W.line("  /// is handed to the process epoch manager when the last "
           "handle");
    W.line("  /// drops.");
    W.open("  Snapshot snapshot() const {");
    W.line("relc::AllShardsGuard Guard(Locks, "
           "relc::AllShardsGuard::Shared);");
    W.line("Snapshot Snap;");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.line("Snap.Shards[S] = Shards[S];");
    W.line("Snap.Pins[S] = Pins[S];");
    W.line("// The only 0 -> 1 transition: writers are excluded by the");
    W.line("// shared stripe hold, so relaxed suffices here — the edge");
    W.line("// writers need comes from the handle's release decrement.");
    W.line("Snap.Pins[S]->fetch_add(1, std::memory_order_relaxed);");
    W.close("}");
    W.line("Snap.Count = Size.load(std::memory_order_relaxed);");
    W.line("return Snap;");
    W.close("}");
    W.line();
    W.line("private:");
    W.line("  /// Rows per chunk of *_parallel queries: result rows cross "
           "the");
    W.line("  /// merge queue in batches so the queue mutex is taken once "
           "per");
    W.line("  /// chunk, not once per row.");
    W.line("  static constexpr size_t ScanChunkRows = 128;");
    W.line("  /// Slots (chunks) in the bounded merge queue.");
    W.line("  static constexpr size_t ScanQueueChunks = 8;");
    W.open("  static unsigned shardOf(int64_t V) {");
    W.line("return static_cast<unsigned>(relc::hashMix64("
           "static_cast<uint64_t>(V)) % NumShards);");
    W.close("}");
    W.line("  /// Runs Body over shard S: wait-free inside an epoch "
           "section when");
    W.line("  /// the shard's writer gate is down, else under the shard's "
           "reader");
    W.line("  /// lock (the fallback every new reader takes while a "
           "writer");
    W.line("  /// fence is up). Body must not block or mutate the facade.");
    W.open("  template <typename BodyT> void readShard(unsigned S, "
           "BodyT &&Body) const {");
    W.open("{");
    W.line("relc::EpochGuard Guard(&Gates[S]);");
    W.open("if (!Gates[S].writerActive()) {");
    W.line("Body();");
    W.line("return;");
    W.close("}");
    W.close("}");
    W.line("auto Lock = Locks.shared(S);");
    W.line("Body();");
    W.close("}");
    W.line("  /// Raises every shard gate and drains the overlapping "
           "wait-free");
    W.line("  /// read sections; the caller holds all writer locks.");
    W.open("  relc::EpochWriterFence fenceAll() {");
    W.line("return relc::EpochWriterFence(Gates, AllShardIdx, NumShards);");
    W.close("}");
    emitAllShardIdx();
    W.line("  /// The COW write-side hook: every mutation reaches its "
           "shard");
    W.line("  /// through this. An unpinned shard (pin count 0) passes");
    W.line("  /// through untouched — the steady-state fast path. A pinned");
    W.line("  /// one is cloned row by row and the frozen original retired.");
    W.line("  /// Sound because the caller holds the shard's writer stripe:");
    W.line("  /// 0 -> 1 happens only under snapshot()'s all-stripe SHARED");
    W.line("  /// hold (excluded here), handle copies increment counts "
           "their");
    W.line("  /// source keeps >= 1, and drops release-decrement — so an");
    W.line("  /// acquire load of zero happens-after every read a dropped");
    W.line("  /// handle made, making in-place mutation race-free.");
    W.open("  " + Seq + " &writable(unsigned S) {");
    W.line("std::shared_ptr<" + Seq + "> &Cur = Shards[S];");
    W.line("if (Pins[S]->load(std::memory_order_acquire) == 0)");
    W.line("  return *Cur;");
    W.line("auto Fresh = std::make_shared<" + Seq + ">();");
    W.open("Cur->scanRows([&](" +
           params(D.spec()->columns(), "v_") + ") {");
    W.line("Fresh->insert(" + colList(D.spec()->columns(), "v_") + ");");
    W.close("});");
    W.line("retireShard(std::move(Cur));");
    W.line("Cur = std::move(Fresh);");
    W.line("// A new pin generation: handles keep their detached counter;");
    W.line("// the live slot starts unpinned again.");
    W.line("Pins[S] = std::make_shared<std::atomic<size_t>>(0);");
    W.line("return *Cur;");
    W.close("}");
    W.line("  /// Hands a frozen shard to the process epoch manager: it is");
    W.line("  /// freed once every in-flight epoch reader has moved on AND");
    W.line("  /// the last snapshot handle pinning it drops.");
    W.open("  static void retireShard(std::shared_ptr<" + Seq +
           "> Old) {");
    W.line("relc::EpochManager::global().retireObject(");
    W.line("    new std::shared_ptr<" + Seq + ">(std::move(Old)));");
    W.close("}");
    W.line("  relc::StripedLockSet Locks{NumShards};");
    W.line("  relc::EpochGate Gates[NumShards];");
    W.line("  std::shared_ptr<" + Seq + "> Shards[NumShards];");
    W.line("  /// One pin counter per shard-state generation, swapped fresh");
    W.line("  /// on every copy-on-write clone. Nonzero means a snapshot");
    W.line("  /// handle still reads that generation.");
    W.line("  std::shared_ptr<std::atomic<size_t>> Pins[NumShards];");
    W.line("  std::atomic<size_t> Size{0};");
    W.close("};");
  }

  /// The 0..NumShards-1 index array fenceAll() hands to the multi-gate
  /// EpochWriterFence constructor.
  void emitAllShardIdx() {
    std::string Init;
    for (unsigned S = 0; S != M.Shards; ++S) {
      if (S)
        Init += ", ";
      Init += std::to_string(S);
    }
    W.line("  static constexpr unsigned AllShardIdx[NumShards] = {" + Init +
           "};");
  }

  //===------------------------------------------------------------------===
  // The wire dispatch table (the spec's `wire` directive): a constexpr
  // opcode -> facade-method mapping matching the relserved protocol
  // (src/server/Wire.h), so a server shim over the generated facade
  // dispatches without hand-maintaining the table. One row per
  // wire-addressable facade op; upserts, parallel scans, and clear are
  // reachable only through other opcodes (Transact / Query) or not
  // wire-exposed at all, so they get no row.
  //===------------------------------------------------------------------===

  void emitWireDispatch() {
    assert(M.hasFacade() && "wire dispatch without a facade");
    struct Row {
      unsigned Opcode;
      std::string Method;
      unsigned Arity;
    };
    // Opcode values mirror wire::Op (kept numeric here so generated
    // headers stay standalone).
    std::vector<Row> Rows;
    for (const MethodOp &Op : M.Ops) {
      if (Op.Where != Layer::Facade)
        continue;
      switch (Op.Kind) {
      case OpKind::Insert:
        Rows.push_back({0x02, "insert", 0});
        break;
      case OpKind::RemoveBy:
        Rows.push_back({0x03, Op.Name, 0});
        break;
      case OpKind::UpdateBy:
        Rows.push_back({0x04, Op.Name, 0});
        break;
      case OpKind::Query:
        Rows.push_back({0x05, Op.Name, 0});
        break;
      case OpKind::TransactBy:
        Rows.push_back({0x06, Op.Name, Op.Arity});
        break;
      case OpKind::ParallelScan:
      case OpKind::UpsertBy:
      case OpKind::LookupBy:
      case OpKind::Clear:
        break;
      }
    }
    // size() exists on every facade.
    Rows.push_back({0x07, "size", 0});

    std::string Fac = M.ClassName + "_concurrent";
    W.line();
    W.line("/// Wire dispatch table for " + Fac + ": one row per wire-");
    W.line("/// addressable facade method, opcode values matching the "
           "relserved");
    W.line("/// binary protocol. An opcode with several specialized "
           "methods (e.g.");
    W.line("/// one Query per query directive) gets one row per method; "
           "lookup()");
    W.line("/// returns the first.");
    W.open("struct " + M.ClassName + "_wire {");
    W.open("struct Entry {");
    W.line("unsigned char Opcode;");
    W.line("const char *Method;");
    W.line("/// Key tuples of a transact row; 0 elsewhere.");
    W.line("unsigned Arity;");
    W.close("};");
    W.line("static constexpr unsigned NumEntries = " +
           std::to_string(Rows.size()) + ";");
    W.open("static constexpr Entry Table[NumEntries] = {");
    for (const Row &R : Rows) {
      char Op[8];
      std::snprintf(Op, sizeof(Op), "0x%02X", R.Opcode);
      W.line("{" + std::string(Op) + ", \"" + R.Method + "\", " +
             std::to_string(R.Arity) + "},");
    }
    W.close("};");
    W.open("static constexpr const Entry *lookup(unsigned char Op) {");
    W.line("for (unsigned I = 0; I != NumEntries; ++I)");
    W.line("  if (Table[I].Opcode == Op)");
    W.line("    return &Table[I];");
    W.line("return nullptr;");
    W.close("}");
    W.close("};");
  }

  void emitFacadeQuery(const MethodOp &Q, const std::string &SCName) {
    bool Routed = Q.Lock.Routed;
    // The epoch read path is a lock-plan decision, not a backend one:
    // LockPlanPrecompute stamps WaitFree on every plain shared query
    // (and leaves it off ParallelScan, whose pooled workers may block).
    assert(Q.Lock.WaitFree &&
           "facade query without the wait-free read plan — run the pass "
           "pipeline");
    std::string Params = params(Q.InputCols, "q_");
    if (!Params.empty())
      Params += ", ";
    std::string FwdArgs = colList(Q.InputCols, "q_");
    if (!FwdArgs.empty())
      FwdArgs += ", ";

    W.line();
    if (Routed) {
      W.line("  /// " + Q.Name + ": routed (the inputs bind '" + SCName +
             "'), one shard,");
      W.line("  /// wait-free via readShard (reader lock only while a "
             "writer holds");
      W.line("  /// the shard's gate).");
      W.open("  template <typename FnT> void " + Q.Name + "(" + Params +
             "FnT &&Emit) const {");
      W.line("unsigned S = shardOf(q_" + SCName + ");");
      W.line("readShard(S, [&] { Shards[S]->" + Q.Name + "(" + FwdArgs +
             "Emit); });");
      W.close("}");
      return;
    }

    W.line("  /// " + Q.Name + ": fan-out, each shard in turn via "
           "readShard");
    W.line("  /// (per-shard-consistent, not a global snapshot).");
    W.open("  template <typename FnT> void " + Q.Name + "(" + Params +
           "FnT &&Emit) const {");
    W.line("for (unsigned S = 0; S != NumShards; ++S)");
    W.line("  readShard(S, [&] { Shards[S]->" + Q.Name + "(" + FwdArgs +
           "Emit); });");
    W.close("}");
  }

  /// The parallel variant of a fan-out query: one worker per shard,
  /// bounded merge queue. Lowered as its own op directly after the
  /// base query; LockPlanPrecompute already erased the routed and
  /// zero-output cases, so no blank line is emitted here — the comment
  /// block abuts the base query exactly as it always has.
  void emitFacadeParallel(const MethodOp &Op) {
    unsigned K = Op.OutputCols.size();
    assert(K > 0 && !Op.Lock.Routed &&
           "parallel scan survived lock-plan precompute it should not");
    assert(!Op.Lock.WaitFree &&
           "pooled scan workers block on the merge queue; they must hold "
           "reader locks, not epoch sections");
    std::string Params = params(Op.InputCols, "q_");
    if (!Params.empty())
      Params += ", ";
    std::string FwdArgs = colList(Op.InputCols, "q_");
    if (!FwdArgs.empty())
      FwdArgs += ", ";
    std::string RowT = "std::array<int64_t, " + std::to_string(K) + ">";
    std::string LambdaParams, RowInit, EmitArgs;
    for (unsigned I = 0; I != K; ++I) {
      if (I) {
        LambdaParams += ", ";
        RowInit += ", ";
        EmitArgs += ", ";
      }
      LambdaParams += "int64_t r" + std::to_string(I);
      RowInit += "r" + std::to_string(I);
      EmitArgs += "Row[" + std::to_string(I) + "]";
    }
    W.line("  /// As " + Op.Callee + ", with one pooled worker per shard "
           "(the process-");
    W.line("  /// wide relc::ScanPool — no thread spawn per call) feeding "
           "a bounded");
    W.line("  /// merge queue in ScanChunkRows-row chunks: the same "
           "multiset of");
    W.line("  /// rows, in arbitrary interleaved order. Workers read "
           "under shard");
    W.line("  /// reader locks, not epoch sections — pool tasks may block "
           "on queue");
    W.line("  /// backpressure, which a read-side section must never do. "
           "Emit runs");
    W.line("  /// on the calling thread and must not call back into this "
           "facade.");
    W.open("  template <typename FnT> void " + Op.Name + "(" + Params +
           "FnT &&Emit) const {");
    W.line("using ChunkT = std::vector<" + RowT + ">;");
    W.line("relc::BoundedQueue<ChunkT> Queue(ScanQueueChunks, NumShards);");
    W.line("relc::ScanPool::TaskGroup Tasks(relc::ScanPool::global());");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.open("Tasks.submit([&, S] {");
    W.line("auto Lock = Locks.shared(S);");
    W.line("ChunkT C;");
    W.line("C.reserve(ScanChunkRows);");
    W.open("Shards[S]->" + Op.Callee + "(" + FwdArgs + "[&](" + LambdaParams +
           ") {");
    W.line("C.push_back(" + RowT + "{" + RowInit + "});");
    W.open("if (C.size() == ScanChunkRows) {");
    W.line("Queue.push(std::move(C));");
    W.line("C.clear();");
    W.line("C.reserve(ScanChunkRows);");
    W.close("}");
    W.close("});");
    W.line("if (!C.empty())");
    W.line("  Queue.push(std::move(C));");
    W.line("Queue.producerDone();");
    W.close("});");
    W.close("}");
    W.line("ChunkT Chunk;");
    W.line("while (Queue.pop(Chunk))");
    W.line("  for (const " + RowT + " &Row : Chunk)");
    W.line("    Emit(" + EmitArgs + ");");
    W.line("Tasks.wait();");
    W.close("}");
  }

  void emitFacadeRemove(const MethodOp &Op, const std::string &SCName) {
    ColumnSet Key = Op.Key;
    bool Routed = Op.Lock.Routed;
    std::string Name = "remove_by_" + colsSuffix(Key);
    W.line();
    if (Routed) {
      W.line("  /// " + Name + ": routed, one shard under its writer "
             "lock.");
      W.open("  bool " + Name + "(" + params(Key, "q_") + ") {");
      W.line("unsigned S = shardOf(q_" + SCName + ");");
      W.line("auto Lock = Locks.exclusive(S);");
      W.line("relc::EpochWriterFence Fence(Gates[S]);");
      W.line("bool Removed = writable(S)." + Name + "(" + colList(Key, "q_") +
             ");");
      W.line("if (Removed)");
      W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
      W.line("return Removed;");
      W.close("}");
      return;
    }
    W.line("  /// " + Name + ": the key misses '" + SCName +
           "', so the owner is");
    W.line("  /// unknown — all writer locks, try each shard (at most one "
           "match).");
    W.open("  bool " + Name + "(" + params(Key, "q_") + ") {");
    W.line("relc::AllShardsGuard Guard(Locks);");
    W.line("relc::EpochWriterFence Fence = fenceAll();");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.open("if (writable(S)." + Name + "(" + colList(Key, "q_") + ")) {");
    W.line("Size.fetch_sub(1, std::memory_order_relaxed);");
    W.line("return true;");
    W.close("}");
    W.close("}");
    W.line("return false;");
    W.close("}");
  }

  void emitFacadeUpdate(const MethodOp &Op, const std::string &SCName) {
    ColumnSet Key = Op.Key;
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    bool Routed = Op.Lock.Routed;
    std::string Name = "update_by_" + colsSuffix(Key);
    std::string Params = params(Key, "q_");
    if (!Rest.empty())
      Params += ", " + params(Rest, "v_");
    W.line();
    if (Routed) {
      W.line("  /// " + Name + ": routed (the key binds '" + SCName +
             "' and the new");
      W.line("  /// values cannot rewrite it), one shard under its writer "
             "lock.");
      W.open("  bool " + Name + "(" + Params + ") {");
      W.line("unsigned S = shardOf(q_" + SCName + ");");
      W.line("auto Lock = Locks.exclusive(S);");
      W.line("relc::EpochWriterFence Fence(Gates[S]);");
      // The shard-local reinsert can no-op on an FD-violating
      // collision with another key (release builds); track the
      // shard's size delta so the facade counter never drifts.
      // Bind the writable shard once: the COW clone (if any) must
      // happen before Before is sampled.
      W.line(M.ClassName + " &Sh = writable(S);");
      W.line("size_t Before = Sh.size();");
      W.line("bool Updated = Sh." + Name + "(" +
             mixedArgs(Key, "q_", "v_") + ");");
      W.line("if (Sh.size() < Before)");
      W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
      W.line("return Updated;");
      W.close("}");
      return;
    }
    W.line("  /// " + Name + ": rewrites every non-key column including "
           "'" + SCName + "',");
    W.line("  /// so the tuple may change owners — all writer locks, "
           "remove from");
    W.line("  /// the current owner, reinsert into the new one "
           "(migration).");
    W.open("  bool " + Name + "(" + Params + ") {");
    W.line("relc::AllShardsGuard Guard(Locks);");
    W.line("relc::EpochWriterFence Fence = fenceAll();");
    W.open("for (unsigned S = 0; S != NumShards; ++S) {");
    W.open("if (writable(S).remove_by_" + colsSuffix(Key) + "(" +
           colList(Key, "q_") + ")) {");
    // A false insert() is an FD-violating collision in the target
    // shard; keep Size consistent with the shards regardless.
    W.line("if (!writable(shardOf(v_" + SCName + ")).insert(" +
           mixedArgs(Key, "q_", "v_") + "))");
    W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
    W.line("return true;");
    W.close("}");
    W.close("}");
    W.line("return false;");
    W.close("}");
  }

  void emitFacadeUpsert(const MethodOp &Op, const std::string &SCName) {
    ColumnSet Key = Op.Key;
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    bool Routed = Op.Lock.Routed;
    std::string Name = "upsert_by_" + colsSuffix(Key);
    std::string FnArgs = "Found";
    if (!Rest.empty())
      FnArgs += ", " + colList(Rest, "c_");
    W.line();
    if (Routed) {
      W.line("  /// " + Name + ": the atomic read-modify-write, routed — "
             "ONE shard");
      W.line("  /// writer lock linearizes the whole cycle (see the "
             "sequential");
      W.line("  /// upsert_by_" + colsSuffix(Key) +
             " for the callback contract).");
      W.open("  template <typename FnT> bool " + Name + "(" +
             params(Key, "q_") + ", FnT &&Fn) {");
      W.line("unsigned S = shardOf(q_" + SCName + ");");
      W.line("auto Lock = Locks.exclusive(S);");
      W.line("relc::EpochWriterFence Fence(Gates[S]);");
      // Track the shard's size delta rather than trusting the return
      // value: an FD-violating collision with another key can make
      // the shard-local reinsert no-op (release builds), and the
      // facade counter must follow the shards regardless. Bind the
      // writable shard once: the COW clone (if any) must happen
      // before Before is sampled.
      W.line(M.ClassName + " &Sh = writable(S);");
      W.line("size_t Before = Sh.size();");
      W.line("bool Inserted = Sh." + Name + "(" +
             colList(Key, "q_") + ", Fn);");
      W.line("if (Sh.size() > Before)");
      W.line("  Size.fetch_add(1, std::memory_order_relaxed);");
      W.line("else if (Sh.size() < Before)");
      W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
      W.line("return Inserted;");
      W.close("}");
      return;
    }
    W.line("  /// " + Name + ": the key misses '" + SCName +
           "' — all writer locks;");
    W.line("  /// the new values may rewrite the shard column, migrating "
           "the");
    W.line("  /// tuple to its new owner.");
    W.open("  template <typename FnT> bool " + Name + "(" +
           params(Key, "q_") + ", FnT &&Fn) {");
    W.line("relc::AllShardsGuard Guard(Locks);");
    W.line("relc::EpochWriterFence Fence = fenceAll();");
    for (ColumnId C : Rest)
      W.line("int64_t c_" + Cat.name(C) + " = 0;");
    W.line("unsigned Owner = NumShards;");
    std::string LookupArgs = colList(Key, "q_");
    if (!Rest.empty())
      LookupArgs += ", " + colList(Rest, "c_");
    W.line("for (unsigned S = 0; S != NumShards && Owner == NumShards; "
           "++S)");
    W.line("  if (Shards[S]->lookup_by_" + colsSuffix(Key) + "(" +
           LookupArgs + "))");
    W.line("    Owner = S;");
    W.line("bool Found = Owner != NumShards;");
    W.line("Fn(" + FnArgs + ");");
    W.line("if (Found)");
    W.line("  writable(Owner).remove_by_" + colsSuffix(Key) + "(" +
           colList(Key, "q_") + ");");
    // SC is a non-key column here, so the new owner comes from c_<SC>.
    // A false insert() means the new tuple collided with an existing
    // one on another key FD — an FD-violating input, but keep Size
    // consistent with the shards regardless (as the interpreted
    // ConcurrentRelation::upsert does).
    W.line("bool Inserted = writable(shardOf(c_" + SCName + ")).insert(" +
           mixedArgs(Key, "q_", "c_") + ");");
    W.line("if (!Found && Inserted)");
    W.line("  Size.fetch_add(1, std::memory_order_relaxed);");
    W.line("else if (Found && !Inserted)");
    W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
    W.line("return !Found;");
    W.close("}");
  }

  /// Joins non-empty argument-list fragments with ", ".
  static std::string join(std::initializer_list<std::string> Parts) {
    std::string Out;
    for (const std::string &P : Parts) {
      if (P.empty())
        continue;
      if (!Out.empty())
        Out += ", ";
      Out += P;
    }
    return Out;
  }

  //===------------------------------------------------------------------===
  // transact*_by_<key>: the atomic N-key read-modify-write. Arity 2 is
  // the historical transfer shape (pairwise Lo/Hi lock ordering); any
  // larger arity locks its owning stripe set through ShardSetGuard,
  // which sorts, dedups, and acquires ascending — the same total order.
  //===------------------------------------------------------------------===

  /// Per-side naming: sides are a_, b_, c_, ... with FoundA/FoundB/...
  /// flags and SA/SB/... shard indices.
  static std::string sidePrefix(unsigned I) {
    return std::string(1, char('a' + I)) + "_";
  }
  static std::string sideLetter(unsigned I) {
    return std::string(1, char('A' + I));
  }

  void emitFacadeTransact(const MethodOp &Op, const std::string &SCName) {
    ColumnSet Key = Op.Key;
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    unsigned N = Op.Arity;
    assert(N >= 2 && "transact op with a degenerate arity");
    bool Routed = Op.Lock.Routed;
    std::string Suffix = colsSuffix(Key);
    std::string Name = Op.Name;
    std::string Apply =
        N == 2 ? "tx_apply_by_" + Suffix
               : "tx_apply" + std::to_string(N) + "_by_" + Suffix;
    // Fn(bool FoundA, int64_t &a_<rest>..., bool FoundB, ...): one
    // (flag, values) group per side.
    std::string FnArgs;
    for (unsigned I = 0; I != N; ++I)
      FnArgs = join({FnArgs, "Found" + sideLetter(I),
                     colList(Rest, sidePrefix(I))});
    std::string Params;
    for (unsigned I = 0; I != N; ++I)
      Params = join({Params, params(Key, sidePrefix(I))});
    Params = join({Params, "FnT &&Fn"});

    W.line();
    if (N == 2) {
      W.line("  /// " + Name + ": atomic two-key read-modify-write "
             "(transfer-style");
      W.line("  /// transaction) over key pattern {" + Suffix +
             "}. Resolves both tuples,");
      W.line("  /// calls Fn(bool FoundA, int64_t &a_..., bool FoundB, "
             "int64_t &b_...)");
      W.line("  /// exactly once with the pre-transaction non-key values "
             "(zeros when");
      W.line("  /// absent), then writes both sides back — an absent side "
             "is inserted");
      W.line("  /// with whatever values Fn leaves. Fn may return false to "
             "abort");
      W.line("  /// (nothing is written); a void Fn always commits. "
             "Returns true if");
      W.line("  /// the transaction committed.");
    } else {
      W.line("  /// " + Name + ": atomic " + std::to_string(N) +
             "-key read-modify-write over key pattern");
      W.line("  /// {" + Suffix + "}. Resolves all " + std::to_string(N) +
             " tuples, calls Fn(bool FoundA, int64_t &a_...,");
      W.line("  /// ..., bool Found" + sideLetter(N - 1) + ", int64_t &" +
             sidePrefix(N - 1) + "...) exactly once with the "
             "pre-transaction");
      W.line("  /// non-key values (zeros when absent), then writes every "
             "side back —");
      W.line("  /// an absent side is inserted with whatever values Fn "
             "leaves. Fn may");
      W.line("  /// return false to abort (nothing is written); a void Fn "
             "always");
      W.line("  /// commits. Returns true if the transaction committed.");
    }
    if (Routed) {
      if (N == 2) {
        W.line("  /// Locking: exactly the owning shard stripes — one or "
               "two, never");
        W.line("  /// all — acquired in ascending index order (two-phase "
               "locking, the");
        W.line("  /// same total order as every other multi-stripe "
               "acquisition).");
        W.open("  template <typename FnT> bool " + Name + "(" + Params +
               ") {");
        W.line("unsigned SA = shardOf(a_" + SCName + ");");
        W.line("unsigned SB = shardOf(b_" + SCName + ");");
        W.line("unsigned Lo = SA < SB ? SA : SB;");
        W.line("unsigned Hi = SA < SB ? SB : SA;");
        W.line("auto LockLo = Locks.exclusive(Lo);");
        W.line("std::unique_lock<std::shared_mutex> LockHi;");
        W.line("if (Hi != Lo)");
        W.line("  LockHi = Locks.exclusive(Hi);");
        W.line("unsigned FenceIdx[2] = {Lo, Hi};");
        W.line("relc::EpochWriterFence Fence(Gates, FenceIdx, "
               "Hi != Lo ? 2u : 1u);");
      } else {
        W.line("  /// Locking: exactly the owning shard stripes — at most " +
               std::to_string(N) + ", never");
        W.line("  /// all — sorted, deduped, and acquired in ascending "
               "index order by");
        W.line("  /// ShardSetGuard (two-phase locking, the same total "
               "order as every");
        W.line("  /// other multi-stripe acquisition).");
        W.open("  template <typename FnT> bool " + Name + "(" + Params +
               ") {");
        std::string StripeList;
        for (unsigned I = 0; I != N; ++I) {
          W.line("unsigned S" + sideLetter(I) + " = shardOf(" +
                 sidePrefix(I) + SCName + ");");
          StripeList = join({StripeList, "S" + sideLetter(I)});
        }
        W.line("relc::ShardSetGuard Guard(Locks, {" + StripeList + "});");
        W.line("relc::EpochWriterFence Fence(Gates, "
               "Guard.stripes().data(), Guard.stripes().size());");
      }
    } else {
      W.line("  /// Locking: the key misses '" + SCName +
             "', so the owners are unknown");
      W.line("  /// and the write-back may migrate tuples — every "
             "writer stripe, in");
      W.line("  /// ascending order.");
      W.open("  template <typename FnT> bool " + Name + "(" + Params +
             ") {");
      W.line("relc::AllShardsGuard Guard(Locks);");
      W.line("relc::EpochWriterFence Fence = fenceAll();");
    }
    for (ColumnId C : Rest)
      for (unsigned I = 0; I != N; ++I)
        W.line("int64_t " + sidePrefix(I) + Cat.name(C) + " = 0;");
    for (unsigned I = 0; I != N; ++I) {
      std::string Side = sideLetter(I);
      std::string P = sidePrefix(I);
      std::string LookupArgs = join({colList(Key, P), colList(Rest, P)});
      if (Routed) {
        W.line("bool Found" + Side + " = Shards[S" + Side +
               "]->lookup_by_" + Suffix + "(" + LookupArgs + ");");
      } else {
        W.line("bool Found" + Side + " = false;");
        W.line("for (unsigned S = 0; S != NumShards && !Found" + Side +
               "; ++S)");
        W.line("  Found" + Side + " = Shards[S]->lookup_by_" + Suffix +
               "(" + LookupArgs + ");");
      }
    }
    W.line("bool Commit = true;");
    W.line("if constexpr (std::is_void_v<decltype(Fn(" + FnArgs + "))>)");
    W.line("  Fn(" + FnArgs + ");");
    W.line("else");
    W.line("  Commit = Fn(" + FnArgs + ");");
    W.line("if (!Commit)");
    W.line("  return false;");
    for (unsigned I = 0; I != N; ++I) {
      std::string Shard = Routed ? "S" + sideLetter(I) : "";
      W.line(Apply + "(" +
             join({Shard, colList(Key, sidePrefix(I)),
                   colList(Rest, sidePrefix(I))}) + ");");
    }
    W.line("return true;");
    W.close("}");

    // The write-back half, shared by all sides; private.
    W.line();
    W.line("private:");
    std::string ApplyParams =
        join({Routed ? "unsigned S" : "", params(Key, "q_"),
              params(Rest, "c_")});
    if (Routed) {
      W.line("  /// Write-back half of " + Name + ": upserts the key to "
             "the given");
      W.line("  /// values on shard S, whose writer lock the caller "
             "holds.");
      W.open("  void " + Apply + "(" + ApplyParams + ") {");
      W.line(M.ClassName + " &Sh = writable(S);");
      W.line("size_t Before = Sh.size();");
      W.open("Sh.upsert_by_" + Suffix + "(" +
             join({colList(Key, "q_"),
                   "[&](" + join({"bool", refParams(Rest, "r_")}) + ") {"}));
      for (ColumnId C : Rest)
        W.line("r_" + Cat.name(C) + " = c_" + Cat.name(C) + ";");
      W.close("});");
      W.line("if (Sh.size() > Before)");
      W.line("  Size.fetch_add(1, std::memory_order_relaxed);");
      W.line("else if (Sh.size() < Before)");
      W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
      W.close("}");
    } else {
      W.line("  /// Write-back half of " + Name + " under every writer "
             "lock (held by");
      W.line("  /// the caller): upserts the key to the given values, "
             "migrating the");
      W.line("  /// tuple to the shard of the new '" + SCName +
             "' value.");
      W.open("  void " + Apply + "(" + ApplyParams + ") {");
      for (ColumnId C : Rest)
        W.line("int64_t o_" + Cat.name(C) + " = 0;");
      W.line("unsigned Owner = NumShards;");
      std::string LookupArgs = join({colList(Key, "q_"),
                                     colList(Rest, "o_")});
      W.line("for (unsigned S = 0; S != NumShards && Owner == NumShards; "
             "++S)");
      W.line("  if (Shards[S]->lookup_by_" + Suffix + "(" + LookupArgs +
             "))");
      W.line("    Owner = S;");
      W.line("if (Owner != NumShards)");
      W.line("  writable(Owner).remove_by_" + Suffix + "(" +
             colList(Key, "q_") + ");");
      W.line("bool Inserted = writable(shardOf(c_" + SCName + ")).insert(" +
             mixedArgs(Key, "q_", "c_") + ");");
      W.line("if (Owner == NumShards && Inserted)");
      W.line("  Size.fetch_add(1, std::memory_order_relaxed);");
      W.line("else if (Owner != NumShards && !Inserted)");
      W.line("  Size.fetch_sub(1, std::memory_order_relaxed);");
      W.close("}");
    }
    W.line();
    W.line("public:");
  }

  const ir::Module &M;
  const Decomposition &D;
  const Catalog &Cat;
  CodeWriter W;
  std::map<PrimId, NodeId> UnitOwner;
};

class CppBackend : public Backend {
public:
  std::string_view name() const override { return "cpp"; }
  std::string emit(const ir::Module &M) override {
    assert(M.Decomp && "module with no decomposition");
    return CppEmitter(M).run();
  }
};

} // namespace

std::unique_ptr<Backend> relc::createCppBackend() {
  return std::make_unique<CppBackend>();
}
