//===- codegen/backend/CppBackend.h - C++ header backend --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ backend of the relc pipeline (Section 6): renders an
/// ir::Module into a standalone C++ header — node structs with
/// embedded intrusive hooks, concrete ds/ container members, query and
/// removal code specialized from the planner's plans stamped on each
/// op, and (when the module has a facade) the sharded thread-safe
/// `<class>_concurrent` wrapper whose locking follows each op's
/// precomputed LockPlan.
///
/// Scope of the generated code:
///  - columns are int64_t (the paper's case studies are integer-keyed;
///    interned strings fit through their ids);
///  - `insert` and the requested query shapes are emitted for any
///    adequate decomposition;
///  - `remove_by_*` covers *key* patterns (at most one matching
///    tuple); bulk removal stays the dynamic engine's job;
///  - `update_by_*` composes remove + insert (semantically equal,
///    Section 4.5); `upsert_by_*` is the atomic read-modify-write;
///  - `transact_by_*` / `transact<N>_by_*` is the atomic N-key
///    read-modify-write on the facade: the owning shard stripes
///    acquired in ascending order (two-phase locking), every tuple
///    resolved, one callback, every side written back — the static
///    generalization of ConcurrentRelation::transact.
///
/// The emitted header depends only on the ds/ container headers —
/// plus, in concurrent mode, concurrent/StripedLock.h,
/// concurrent/BoundedQueue.h, <thread>, and <atomic> (link consumers
/// with -pthread) — and is compiled and replayed against the oracle in
/// integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_BACKEND_CPPBACKEND_H
#define RELC_CODEGEN_BACKEND_CPPBACKEND_H

#include "codegen/backend/Backend.h"

namespace relc {

std::unique_ptr<Backend> createCppBackend();

} // namespace relc

#endif // RELC_CODEGEN_BACKEND_CPPBACKEND_H
