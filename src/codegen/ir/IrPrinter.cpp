//===- codegen/ir/IrPrinter.cpp - Textual IR dumps ----------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/ir/IrPrinter.h"

#include <cassert>

using namespace relc;
using namespace relc::ir;

namespace {

const char *kindName(OpKind K) {
  switch (K) {
  case OpKind::Insert:
    return "insert";
  case OpKind::Query:
    return "query";
  case OpKind::ParallelScan:
    return "parallel-scan";
  case OpKind::RemoveBy:
    return "remove";
  case OpKind::UpdateBy:
    return "update";
  case OpKind::LookupBy:
    return "lookup";
  case OpKind::UpsertBy:
    return "upsert";
  case OpKind::TransactBy:
    return "transact";
  case OpKind::Clear:
    return "clear";
  }
  return "?";
}

std::string colTuple(const Catalog &Cat, ColumnSet Cols) {
  std::string Out = "(";
  bool First = true;
  for (ColumnId C : Cols) {
    if (!First)
      Out += ", ";
    Out += Cat.name(C);
    First = false;
  }
  return Out + ")";
}

} // namespace

std::string ir::printModule(const Module &M) {
  assert(M.Decomp && "printing a module with no decomposition");
  const Catalog &Cat = M.Decomp->catalog();
  std::string Out;
  Out += "module " + M.ClassName + " (namespace " + M.Namespace + ")\n";
  Out += "  spec: " + M.Decomp->spec()->str() + "\n";
  Out += "  decomposition: " +
         M.Decomp->canonicalString(/*IncludeDs=*/true) + "\n";
  if (M.hasFacade())
    Out += "  shards: " + std::to_string(M.Shards) + " on " +
           Cat.name(M.ShardColumn) + "\n";
  else
    Out += "  shards: none\n";
  if (M.WireDispatch)
    Out += "  wire dispatch: on\n";

  Out += "  ops:\n";
  for (const MethodOp &Op : M.Ops) {
    std::string Line = "    ";
    Line += Op.Where == Layer::Sequential ? "seq " : "fac ";
    Line += kindName(Op.Kind);
    Line += " ";
    Line += Op.Name;
    if (Op.Kind == OpKind::Query || Op.Kind == OpKind::ParallelScan)
      Line += " " + colTuple(Cat, Op.InputCols) + " -> " +
              colTuple(Cat, Op.OutputCols);
    else if (Op.Key.size() > 0)
      Line += " key=" + colTuple(Cat, Op.Key);
    if (Op.Arity != 0)
      Line += " arity=" + std::to_string(Op.Arity);
    Line += Op.Provenance == Origin::Requested ? " [requested]"
                                               : " [support]";
    Line += " lock=";
    Line += lockModeName(Op.Lock.Mode);
    if (Op.Lock.Routed)
      Line += " routed";
    if (Op.Lock.WaitFree)
      Line += " wait_free";
    if (Op.Lock.MaxStripes != 0)
      Line += " max_stripes=" + std::to_string(Op.Lock.MaxStripes);
    if (Op.Plan)
      Line += " plan={" + Op.Plan->str() + "}";
    Out += Line + "\n";
  }

  if (!M.PassLog.empty()) {
    Out += "  passes:\n";
    for (const std::string &L : M.PassLog)
      Out += "    " + L + "\n";
  }
  return Out;
}
