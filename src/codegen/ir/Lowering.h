//===- codegen/ir/Lowering.h - SpecFile options -> IR -----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowering stage of the relc pipeline: turns the front end's
/// method-set options plus a decomposition into an ir::Module. Lowering
/// materializes the *support closure* — every method another method's
/// body calls (update needs remove; upsert needs lookup + remove;
/// transact needs the upsert pair) — and stamps provenance so the
/// passes can dedup and prune. It does not decide lock plans; that is
/// the LockPlanPrecompute pass.
///
/// The resulting op order is the emission order backends iterate in.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_IR_LOWERING_H
#define RELC_CODEGEN_IR_LOWERING_H

#include "codegen/Options.h"
#include "codegen/ir/IR.h"

namespace relc {

/// Lowers \p Opts over \p D into a fresh module. Asserts that \p D is
/// adequate, that every requested shape is plannable, that every
/// remove/update/upsert/transact pattern is a key, and that
/// transactions come with a facade (Opts.ConcurrentShards > 0). The
/// module holds a non-owning pointer to \p D.
///
/// The raw module may contain duplicate and unreachable support ops;
/// run the default pass pipeline (ir::addDefaultPasses) before handing
/// it to a backend.
ir::Module lowerToIr(const Decomposition &D, const EmitterOptions &Opts);

} // namespace relc

#endif // RELC_CODEGEN_IR_LOWERING_H
