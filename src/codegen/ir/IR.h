//===- codegen/ir/IR.h - Typed codegen IR -----------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed intermediate representation between the spec front end and
/// the emission backends. An ir::Module is the complete, explicit
/// description of one compilation: the decomposition it specializes,
/// the facade configuration, and one MethodOp per method of the
/// generated class(es), in emission order.
///
/// Every decision a backend used to make mid-emission is a field here:
///  - which methods exist at all (lowering materializes the support
///    closure — e.g. upsert needs lookup + remove — and the
///    DeadIndexElimination pass prunes unreachable support ops);
///  - duplicates (the old ad-hoc `dedup(allRemoveKeys)`) are merged by
///    the MethodDedup pass;
///  - lock/routing choices (routed single-stripe vs all-stripe fan-out,
///    stripe counts for N-key transactions) are stamped on each facade
///    op by the LockPlanPrecompute pass.
///
/// Backends (codegen/backend/Backend.h) are pure visitors over
/// Module::Ops: they may choose *syntax*, never *method sets* or *lock
/// plans*.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_IR_IR_H
#define RELC_CODEGEN_IR_IR_H

#include "decomp/Decomposition.h"
#include "query/Plan.h"
#include "rel/ColumnSet.h"
#include "runtime/Cut.h"

#include <memory>
#include <string>
#include <vector>

namespace relc::ir {

/// What a MethodOp does. One enumerator per distinct method shape of
/// the generated classes.
enum class OpKind {
  Insert,       ///< insert(all columns)
  Query,        ///< query method from a planner QueryPlan
  ParallelScan, ///< facade-only: fan-out query with per-shard workers
  RemoveBy,     ///< remove_by_<key>
  UpdateBy,     ///< update_by_<key> (remove + reinsert)
  LookupBy,     ///< lookup_by_<key> (resolve non-key columns)
  UpsertBy,     ///< upsert_by_<key> (atomic read-modify-write)
  TransactBy,   ///< facade-only: atomic N-key read-modify-write
  Clear,        ///< facade clear() (the sequential clear is lifecycle)
};

/// Which generated class an op belongs to.
enum class Layer {
  Sequential, ///< the single-threaded class
  Facade,     ///< the sharded `<class>_concurrent` wrapper
};

/// Why an op exists. Requested ops come from spec directives and are
/// the roots of the liveness analysis; Support ops were materialized by
/// lowering because some other op's body calls them, and may be pruned
/// by DeadIndexElimination when nothing live reaches them.
enum class Origin {
  Requested,
  Support,
};

/// The compile-time lock plan of a facade op, stamped by the
/// LockPlanPrecompute pass (sequential ops get Kind::None). Backends
/// must not re-derive routing: they read Routed/Mode/MaxStripes.
struct LockPlan {
  enum Kind {
    Unset,        ///< not yet stamped (invalid to emit)
    None,         ///< sequential op: no locking
    SharedOne,    ///< one reader stripe (routed read)
    SharedEach,   ///< every stripe in turn, successive reader locks
    ExclusiveOne, ///< one writer stripe (routed mutation)
    ExclusiveSet, ///< the owning stripes, ascending (routed transact)
    ExclusiveAll, ///< every writer stripe, ascending (fan-out mutation)
  };
  Kind Mode = Unset;
  /// True when the op's pattern binds the shard column, so owners are
  /// computed instead of searched.
  bool Routed = false;
  /// Upper bound on stripes held at once (0 = unknown/unlimited; for
  /// ExclusiveSet this is the transaction arity).
  unsigned MaxStripes = 0;
  /// Shared-mode reads only: the op takes an epoch read-side section
  /// (concurrent/Epoch.h) per shard and falls back to the reader
  /// stripe only while a writer gate is up, so its common path does no
  /// shared write at all. Exclusive-mode ops instead drain such
  /// sections with a writer fence before mutating. Stamped by
  /// LockPlanPrecompute; backends read it, they never re-derive it.
  bool WaitFree = false;
};

/// Human-readable name of a lock-plan mode (for dumps and logs).
const char *lockModeName(LockPlan::Kind K);

/// One method of a generated class. Which fields are meaningful depends
/// on Kind; see Lowering.cpp for the exact invariants.
struct MethodOp {
  OpKind Kind;
  Layer Where = Layer::Sequential;
  Origin Provenance = Origin::Requested;
  /// Emitted method name (e.g. "query_by_ns", "transact3_by_bank_acct").
  std::string Name;
  /// Key pattern of *By ops and TransactBy.
  ColumnSet Key;
  /// Query/ParallelScan: bound input pattern / delivered outputs.
  ColumnSet InputCols;
  ColumnSet OutputCols;
  /// TransactBy: number of key tuples (>= 2).
  unsigned Arity = 0;
  /// Facade ops: stamped by LockPlanPrecompute.
  LockPlan Lock;
  /// ParallelScan: name of the underlying per-shard query method.
  std::string Callee;
  /// Query/RemoveBy/LookupBy (sequential): the planner's chosen plan.
  std::shared_ptr<const QueryPlan> Plan;
  /// RemoveBy (sequential): the X/Y cut driving the removal.
  std::shared_ptr<const Cut> RemoveCut;
};

/// One compilation unit: everything a backend needs, nothing it must
/// derive. Non-owning view of the Decomposition — the caller keeps it
/// alive across lowering, passes, and emission.
struct Module {
  const Decomposition *Decomp = nullptr;
  std::string ClassName;
  std::string Namespace;
  /// Facade configuration; Shards == 0 means no facade (and no
  /// Layer::Facade ops).
  unsigned Shards = 0;
  /// Resolved shard column (meaningful iff Shards > 0).
  ColumnId ShardColumn = 0;
  /// Emit the `<class>_wire` opcode dispatch table alongside the
  /// facade (the spec's `wire` directive; requires Shards > 0).
  bool WireDispatch = false;
  /// Facade modules only: the planner's full-row scan (no inputs, all
  /// columns out), stamped by lowering. Backends emit the sequential
  /// class's `scanRows` and the facade's COW snapshot machinery from
  /// it. A Module field rather than a Support MethodOp on purpose:
  /// it exists independently of the requested method set, is never a
  /// dedup/liveness subject, and so emits identically under --no-opt.
  std::shared_ptr<const QueryPlan> RowScanPlan;
  /// All methods, in emission order: sequential ops first, then facade
  /// ops. Backends iterate this vector; they never invent methods.
  std::vector<MethodOp> Ops;
  /// One line per pass action, appended as passes run (surfaced by
  /// --dump-ir).
  std::vector<std::string> PassLog;

  bool hasFacade() const { return Shards > 0; }
  bool hasTransactions() const;
  /// First op matching (Kind, Where, Key) — and Arity, when nonzero.
  /// Queries are matched by Name instead (keys don't identify them).
  const MethodOp *find(OpKind K, Layer L, ColumnSet Key,
                       unsigned Arity = 0) const;
  const MethodOp *findByName(Layer L, const std::string &Name) const;
};

} // namespace relc::ir

#endif // RELC_CODEGEN_IR_IR_H
