//===- codegen/ir/IrPrinter.h - Textual IR dumps ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an ir::Module as the stable, line-oriented text behind
/// `relc --dump-ir`: module header, one line per op (layer, kind,
/// name, key/shape, provenance, lock plan, plan cost), and the pass
/// log. Intended for humans, tests, and CI artifacts — not a parseable
/// interchange format.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_IR_IRPRINTER_H
#define RELC_CODEGEN_IR_IRPRINTER_H

#include "codegen/ir/IR.h"

#include <string>

namespace relc::ir {

std::string printModule(const Module &M);

} // namespace relc::ir

#endif // RELC_CODEGEN_IR_IRPRINTER_H
