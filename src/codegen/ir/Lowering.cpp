//===- codegen/ir/Lowering.cpp - SpecFile options -> IR -----------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Op order is emission order, kept identical to the historical emitter
// so that `relc --no-opt` reproduces pre-IR output byte for byte:
//
//   sequential: insert, queries, remove_by_* (remove ∪ update ∪ upsert
//   ∪ transact keys), update_by_*, (lookup_by_*, upsert_by_*) pairs
//   (upsert ∪ transact keys);
//   facade: insert, (query, parallel scan) pairs, remove_by_*,
//   update_by_*, upsert_by_*, transact*_by_*, clear.
//
// Lowering is deliberately duplication-blind: repeated directives lower
// to repeated ops, merged by the MethodDedup pass (provenance ORed so a
// requested duplicate keeps the survivor alive).
//
//===----------------------------------------------------------------------===//

#include "codegen/ir/Lowering.h"

#include "concurrent/ShardRouter.h"
#include "decomp/Adequacy.h"
#include "query/Planner.h"

#include <cassert>

using namespace relc;
using namespace relc::ir;

namespace {

std::string colsSuffix(const Catalog &Cat, ColumnSet Cols) {
  std::string Out;
  for (ColumnId C : Cols) {
    if (!Out.empty())
      Out += "_";
    Out += Cat.name(C);
  }
  return Out;
}

class LoweringCtx {
public:
  LoweringCtx(const Decomposition &D, const EmitterOptions &Opts)
      : D(D), Opts(Opts), Cat(D.catalog()), All(D.spec()->columns()) {}

  Module run() {
    assert(checkAdequacy(D).Ok &&
           "lowering an inadequate decomposition");
    assert((Opts.Transactions.empty() || Opts.ConcurrentShards > 0) &&
           "transact_by_* lives on the concurrent facade");
    assert((!Opts.WireDispatch || Opts.ConcurrentShards > 0) &&
           "the wire dispatch table targets the concurrent facade");

    M.Decomp = &D;
    M.ClassName = Opts.ClassName;
    M.Namespace = Opts.Namespace;
    M.Shards = Opts.ConcurrentShards;
    M.WireDispatch = Opts.WireDispatch;
    if (M.Shards > 0)
      M.ShardColumn = Opts.ConcurrentShardColumn
                          ? *Opts.ConcurrentShardColumn
                          : ShardRouter::defaultShardColumn(D);

    lowerSequential();
    if (M.hasFacade()) {
      // The full-row scan behind the facade's snapshot machinery
      // (scanRows + COW shard cloning). Always plannable: adequacy
      // means the unconstrained scan reaches every column.
      auto Plan = planQuery(D, ColumnSet(), All, Opts.Params);
      assert(Plan && "adequate decomposition has no full-row scan");
      M.RowScanPlan = std::make_shared<QueryPlan>(std::move(*Plan));
      lowerFacade();
    }
    return std::move(M);
  }

private:
  /// Every key pattern needing remove_by_*: the remove, update, upsert,
  /// and transaction lists concatenated, with the provenance of each
  /// entry (Requested only for the explicit `remove` directives — the
  /// rest exist because some caller's body removes).
  std::vector<std::pair<ColumnSet, Origin>> allRemoveKeys() const {
    std::vector<std::pair<ColumnSet, Origin>> Keys;
    for (ColumnSet K : Opts.RemoveKeys)
      Keys.push_back({K, Origin::Requested});
    for (ColumnSet K : Opts.UpdateKeys)
      Keys.push_back({K, Origin::Support});
    for (ColumnSet K : Opts.UpsertKeys)
      Keys.push_back({K, Origin::Support});
    for (const TransactShape &T : Opts.Transactions)
      Keys.push_back({T.Key, Origin::Support});
    return Keys;
  }

  /// Upsert-pair keys: the upsert directives plus the transaction
  /// keys (transact_by_* is built from the lookup/upsert pair).
  std::vector<std::pair<ColumnSet, Origin>> allUpsertKeys() const {
    std::vector<std::pair<ColumnSet, Origin>> Keys;
    for (ColumnSet K : Opts.UpsertKeys)
      Keys.push_back({K, Origin::Requested});
    for (const TransactShape &T : Opts.Transactions)
      Keys.push_back({T.Key, Origin::Support});
    return Keys;
  }

  std::shared_ptr<const QueryPlan> keyPlan(ColumnSet Key,
                                           const char *What) const {
    assert(D.spec()->fds().isKey(Key, All) && "pattern is not a key");
    (void)What;
    auto Plan = planQuery(D, Key, All, Opts.Params);
    assert(Plan && "no plan to resolve the full tuple");
    return std::make_shared<QueryPlan>(std::move(*Plan));
  }

  void lowerSequential() {
    {
      MethodOp Op;
      Op.Kind = OpKind::Insert;
      Op.Name = "insert";
      M.Ops.push_back(std::move(Op));
    }
    for (const QueryShape &Q : Opts.Queries) {
      auto Plan = planQuery(D, Q.InputCols, Q.OutputCols, Opts.Params);
      assert(Plan && "requested query shape is not plannable");
      MethodOp Op;
      Op.Kind = OpKind::Query;
      Op.Name = Q.Name;
      Op.InputCols = Q.InputCols;
      Op.OutputCols = Q.OutputCols;
      Op.Plan = std::make_shared<QueryPlan>(std::move(*Plan));
      M.Ops.push_back(std::move(Op));
    }
    for (auto [Key, P] : allRemoveKeys()) {
      MethodOp Op;
      Op.Kind = OpKind::RemoveBy;
      Op.Provenance = P;
      Op.Name = "remove_by_" + colsSuffix(Cat, Key);
      Op.Key = Key;
      Op.Plan = keyPlan(Key, "removal");
      Op.RemoveCut = std::make_shared<Cut>(computeCut(D, Key));
      M.Ops.push_back(std::move(Op));
    }
    for (ColumnSet Key : Opts.UpdateKeys) {
      MethodOp Op;
      Op.Kind = OpKind::UpdateBy;
      Op.Name = "update_by_" + colsSuffix(Cat, Key);
      Op.Key = Key;
      M.Ops.push_back(std::move(Op));
    }
    for (auto [Key, P] : allUpsertKeys()) {
      MethodOp Lookup;
      Lookup.Kind = OpKind::LookupBy;
      Lookup.Provenance = P;
      Lookup.Name = "lookup_by_" + colsSuffix(Cat, Key);
      Lookup.Key = Key;
      Lookup.Plan = keyPlan(Key, "lookup");
      M.Ops.push_back(std::move(Lookup));
      MethodOp Upsert;
      Upsert.Kind = OpKind::UpsertBy;
      Upsert.Provenance = P;
      Upsert.Name = "upsert_by_" + colsSuffix(Cat, Key);
      Upsert.Key = Key;
      M.Ops.push_back(std::move(Upsert));
    }
  }

  void lowerFacade() {
    auto facadeOp = [&](OpKind K, Origin P) {
      MethodOp Op;
      Op.Kind = K;
      Op.Where = Layer::Facade;
      Op.Provenance = P;
      return Op;
    };
    {
      MethodOp Op = facadeOp(OpKind::Insert, Origin::Requested);
      Op.Name = "insert";
      M.Ops.push_back(std::move(Op));
    }
    for (const QueryShape &Q : Opts.Queries) {
      MethodOp Op = facadeOp(OpKind::Query, Origin::Requested);
      Op.Name = Q.Name;
      Op.InputCols = Q.InputCols;
      Op.OutputCols = Q.OutputCols;
      M.Ops.push_back(std::move(Op));
      // Every fan-out query with outputs grows a parallel variant; the
      // LockPlanPrecompute pass erases the ones routing makes
      // pointless (routed queries touch one shard — nothing to fan
      // out) and the zero-output ones (nothing to merge).
      MethodOp Par = facadeOp(OpKind::ParallelScan, Origin::Requested);
      Par.Name = Q.Name + "_parallel";
      Par.Callee = Q.Name;
      Par.InputCols = Q.InputCols;
      Par.OutputCols = Q.OutputCols;
      M.Ops.push_back(std::move(Par));
    }
    for (auto [Key, P] : allRemoveKeys()) {
      // A facade wrapper is only *requested* when the directive asked
      // for removal; support copies exist so wrappers stay in lockstep
      // with the sequential class until liveness prunes them.
      MethodOp Op = facadeOp(OpKind::RemoveBy, P);
      Op.Name = "remove_by_" + colsSuffix(Cat, Key);
      Op.Key = Key;
      M.Ops.push_back(std::move(Op));
    }
    for (ColumnSet Key : Opts.UpdateKeys) {
      MethodOp Op = facadeOp(OpKind::UpdateBy, Origin::Requested);
      Op.Name = "update_by_" + colsSuffix(Cat, Key);
      Op.Key = Key;
      M.Ops.push_back(std::move(Op));
    }
    for (auto [Key, P] : allUpsertKeys()) {
      MethodOp Op = facadeOp(OpKind::UpsertBy, P);
      Op.Name = "upsert_by_" + colsSuffix(Cat, Key);
      Op.Key = Key;
      M.Ops.push_back(std::move(Op));
    }
    for (const TransactShape &T : Opts.Transactions) {
      assert(T.Arity >= 2 && T.Arity <= MaxTransactArity &&
             "transaction arity out of range");
      MethodOp Op = facadeOp(OpKind::TransactBy, Origin::Requested);
      std::string Suffix = colsSuffix(Cat, T.Key);
      Op.Name = T.Arity == 2
                    ? "transact_by_" + Suffix
                    : "transact" + std::to_string(T.Arity) + "_by_" + Suffix;
      Op.Key = T.Key;
      Op.Arity = T.Arity;
      M.Ops.push_back(std::move(Op));
    }
    {
      MethodOp Op = facadeOp(OpKind::Clear, Origin::Requested);
      Op.Name = "clear";
      M.Ops.push_back(std::move(Op));
    }
  }

  const Decomposition &D;
  const EmitterOptions &Opts;
  const Catalog &Cat;
  ColumnSet All;
  Module M;
};

} // namespace

ir::Module relc::lowerToIr(const Decomposition &D,
                           const EmitterOptions &Opts) {
  return LoweringCtx(D, Opts).run();
}
