//===- codegen/ir/Passes.cpp - IR pass pipeline -------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/ir/Passes.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace relc;
using namespace relc::ir;

namespace {

const char *layerName(Layer L) {
  return L == Layer::Sequential ? "sequential" : "facade";
}

/// Identity of a method for dedup/liveness purposes. Queries and
/// parallel scans are identified by name (their key fields are empty);
/// *By ops by (kind, layer, key, arity).
struct OpIdent {
  OpKind Kind;
  Layer Where;
  uint64_t KeyBits;
  unsigned Arity;
  std::string Name;

  static OpIdent of(const MethodOp &Op) {
    OpIdent Id;
    Id.Kind = Op.Kind;
    Id.Where = Op.Where;
    Id.KeyBits = 0;
    for (ColumnId C : Op.Key)
      Id.KeyBits |= uint64_t(1) << C;
    Id.Arity = Op.Arity;
    Id.Name = Op.Name;
    return Id;
  }
  bool operator==(const OpIdent &O) const {
    return Kind == O.Kind && Where == O.Where && KeyBits == O.KeyBits &&
           Arity == O.Arity && Name == O.Name;
  }
};

//===--------------------------------------------------------------------===//
// MethodDedup
//===--------------------------------------------------------------------===//

class MethodDedupPass : public Pass {
public:
  std::string_view name() const override { return "method-dedup"; }
  bool isCanonicalization() const override { return true; }

  bool run(Module &M) override {
    std::vector<MethodOp> Out;
    std::vector<OpIdent> Seen;
    bool Changed = false;
    for (MethodOp &Op : M.Ops) {
      OpIdent Id = OpIdent::of(Op);
      auto It = std::find(Seen.begin(), Seen.end(), Id);
      if (It == Seen.end()) {
        Seen.push_back(std::move(Id));
        Out.push_back(std::move(Op));
        continue;
      }
      // First occurrence wins the slot; a requested duplicate keeps
      // the survivor alive through liveness.
      MethodOp &Kept = Out[size_t(It - Seen.begin())];
      if (Op.Provenance == Origin::Requested &&
          Kept.Provenance != Origin::Requested) {
        Kept.Provenance = Origin::Requested;
        M.PassLog.push_back("method-dedup: duplicate " +
                            std::string(layerName(Op.Where)) + " " +
                            Op.Name + " upgrades survivor to requested");
      } else {
        M.PassLog.push_back("method-dedup: merged duplicate " +
                            std::string(layerName(Op.Where)) + " " +
                            Op.Name);
      }
      Changed = true;
    }
    M.Ops = std::move(Out);
    return Changed;
  }

private:
  // Dedup must keep the *first* occurrence: emission order is the
  // order directives appeared in, and the sequential class emits
  // (lookup, upsert) pairs adjacently — dropping later duplicates
  // preserves both.
};

//===--------------------------------------------------------------------===//
// DeadIndexElimination
//===--------------------------------------------------------------------===//

class DeadIndexEliminationPass : public Pass {
public:
  std::string_view name() const override { return "dead-index-elim"; }

  bool run(Module &M) override {
    // Mark: ops a live op's body calls are live. The edge set mirrors
    // the backend method bodies exactly (CppBackend.cpp) — when a body
    // grows a new call, this list must grow with it.
    std::vector<bool> Live(M.Ops.size(), false);
    std::vector<size_t> Work;
    for (size_t I = 0; I != M.Ops.size(); ++I)
      if (M.Ops[I].Provenance == Origin::Requested) {
        Live[I] = true;
        Work.push_back(I);
      }
    auto mark = [&](const MethodOp *Target) {
      if (!Target)
        return;
      size_t I = size_t(Target - M.Ops.data());
      if (!Live[I]) {
        Live[I] = true;
        Work.push_back(I);
      }
    };
    while (!Work.empty()) {
      const MethodOp &Op = M.Ops[Work.back()];
      Work.pop_back();
      constexpr Layer Seq = Layer::Sequential;
      switch (Op.Kind) {
      case OpKind::UpdateBy:
        if (Op.Where == Layer::Facade)
          mark(M.find(OpKind::UpdateBy, Seq, Op.Key));
        mark(M.find(OpKind::RemoveBy, Seq, Op.Key));
        mark(M.find(OpKind::Insert, Seq, ColumnSet()));
        break;
      case OpKind::UpsertBy:
        if (Op.Where == Layer::Facade)
          mark(M.find(OpKind::UpsertBy, Seq, Op.Key));
        mark(M.find(OpKind::LookupBy, Seq, Op.Key));
        mark(M.find(OpKind::RemoveBy, Seq, Op.Key));
        mark(M.find(OpKind::Insert, Seq, ColumnSet()));
        break;
      case OpKind::TransactBy:
        // Both the routed and the fan-out body resolve via lookup and
        // write back via the upsert pair (which migrates through
        // remove + insert in the fan-out case).
        mark(M.find(OpKind::LookupBy, Seq, Op.Key));
        mark(M.find(OpKind::UpsertBy, Seq, Op.Key));
        mark(M.find(OpKind::RemoveBy, Seq, Op.Key));
        mark(M.find(OpKind::Insert, Seq, ColumnSet()));
        break;
      case OpKind::RemoveBy:
        if (Op.Where == Layer::Facade)
          mark(M.find(OpKind::RemoveBy, Seq, Op.Key));
        break;
      case OpKind::Query:
        if (Op.Where == Layer::Facade)
          mark(M.findByName(Seq, Op.Name));
        break;
      case OpKind::ParallelScan:
        mark(M.findByName(Seq, Op.Callee));
        break;
      case OpKind::Insert:
        if (Op.Where == Layer::Facade)
          mark(M.find(OpKind::Insert, Seq, ColumnSet()));
        break;
      case OpKind::LookupBy:
      case OpKind::Clear:
        break;
      }
    }

    // Sweep.
    std::vector<MethodOp> Out;
    bool Changed = false;
    for (size_t I = 0; I != M.Ops.size(); ++I) {
      if (Live[I]) {
        Out.push_back(std::move(M.Ops[I]));
        continue;
      }
      M.PassLog.push_back("dead-index-elim: removed " +
                          std::string(layerName(M.Ops[I].Where)) + " " +
                          M.Ops[I].Name + " (unreachable support)");
      Changed = true;
    }
    M.Ops = std::move(Out);
    return Changed;
  }
};

//===--------------------------------------------------------------------===//
// LockPlanPrecompute
//===--------------------------------------------------------------------===//

class LockPlanPrecomputePass : public Pass {
public:
  std::string_view name() const override { return "lock-plan"; }
  bool isCanonicalization() const override { return true; }

  bool run(Module &M) override {
    bool Changed = false;
    // Decide first, apply after: the decisions read other ops (a
    // scan's base query), so M.Ops must stay intact while deciding.
    std::vector<LockPlan> Plans(M.Ops.size());
    std::vector<bool> Erase(M.Ops.size(), false);
    for (size_t I = 0; I != M.Ops.size(); ++I) {
      MethodOp &Op = M.Ops[I];
      if (Op.Where == Layer::Sequential) {
        Plans[I] = {LockPlan::None, false, 0};
        Changed |= Op.Lock.Mode != LockPlan::None;
        continue;
      }
      bool Routed = bindsShardColumn(M, Op);
      LockPlan Plan;
      Plan.Routed = Routed;
      switch (Op.Kind) {
      case OpKind::Insert:
        // Full tuples always bind the shard column.
        Plan = {LockPlan::ExclusiveOne, true, 1};
        break;
      case OpKind::Query:
        Plan.Mode = Routed ? LockPlan::SharedOne : LockPlan::SharedEach;
        Plan.MaxStripes = 1;
        // Plain shared reads go wait-free: an epoch section per shard,
        // reader stripe only as the writer-gate fallback. ParallelScan
        // stays locked — its pooled workers may block on merge-queue
        // backpressure, which an epoch section must never do.
        Plan.WaitFree = true;
        break;
      case OpKind::ParallelScan: {
        // A routed base query touches one shard (nothing to fan out)
        // and a zero-output one feeds no merge queue: erase, don't
        // stamp.
        const MethodOp *Base = M.findByName(Layer::Sequential, Op.Callee);
        bool BaseRouted =
            Base && Base->InputCols.contains(M.ShardColumn);
        if (BaseRouted || Op.OutputCols.size() == 0) {
          M.PassLog.push_back(
              "lock-plan: erased " + Op.Name +
              (BaseRouted ? " (base query is routed)"
                          : " (no output columns to merge)"));
          Erase[I] = true;
          Changed = true;
          continue;
        }
        Plan.Mode = LockPlan::SharedEach;
        Plan.Routed = false;
        Plan.MaxStripes = M.Shards;
        break;
      }
      case OpKind::RemoveBy:
      case OpKind::UpdateBy:
      case OpKind::UpsertBy:
        if (Routed)
          Plan = {LockPlan::ExclusiveOne, true, 1};
        else
          Plan = {LockPlan::ExclusiveAll, false, M.Shards};
        break;
      case OpKind::TransactBy:
        if (Routed) {
          // Exactly the owning stripes, ascending — at most one per
          // key tuple.
          Plan = {LockPlan::ExclusiveSet, true, Op.Arity};
        } else {
          // Degrade to all stripes: the key misses the shard column,
          // so owners are unknown and write-backs may migrate.
          Plan = {LockPlan::ExclusiveAll, false, M.Shards};
          M.PassLog.push_back("lock-plan: " + Op.Name +
                              " degrades to all stripes (key misses "
                              "the shard column)");
        }
        break;
      case OpKind::Clear:
        Plan = {LockPlan::ExclusiveAll, false, M.Shards};
        break;
      case OpKind::LookupBy:
        assert(false && "lookup_by_* is never a facade op");
        break;
      }
      Changed |= Op.Lock.Mode != Plan.Mode || Op.Lock.Routed != Plan.Routed ||
                 Op.Lock.MaxStripes != Plan.MaxStripes ||
                 Op.Lock.WaitFree != Plan.WaitFree;
      Plans[I] = Plan;
    }
    std::vector<MethodOp> Out;
    Out.reserve(M.Ops.size());
    for (size_t I = 0; I != M.Ops.size(); ++I) {
      if (Erase[I])
        continue;
      M.Ops[I].Lock = Plans[I];
      Out.push_back(std::move(M.Ops[I]));
    }
    M.Ops = std::move(Out);
    return Changed;
  }

private:
  /// Does the op's binding pattern include the shard column? Queries
  /// route by their input pattern, keyed mutations by their key;
  /// inserts bind every column.
  static bool bindsShardColumn(const Module &M, const MethodOp &Op) {
    switch (Op.Kind) {
    case OpKind::Insert:
      return true;
    case OpKind::Query:
    case OpKind::ParallelScan:
      return Op.InputCols.contains(M.ShardColumn);
    default:
      return Op.Key.contains(M.ShardColumn);
    }
  }
};

} // namespace

std::unique_ptr<Pass> ir::createMethodDedupPass() {
  return std::make_unique<MethodDedupPass>();
}
std::unique_ptr<Pass> ir::createDeadIndexEliminationPass() {
  return std::make_unique<DeadIndexEliminationPass>();
}
std::unique_ptr<Pass> ir::createLockPlanPrecomputePass() {
  return std::make_unique<LockPlanPrecomputePass>();
}

bool PassManager::run(Module &M, bool RunOptimizations) const {
  bool Changed = false;
  for (const std::unique_ptr<Pass> &P : Passes) {
    if (!RunOptimizations && !P->isCanonicalization()) {
      M.PassLog.push_back("pipeline: skipped " + std::string(P->name()) +
                          " (--no-opt)");
      continue;
    }
    Changed |= P->run(M);
  }
  return Changed;
}

void ir::addDefaultPasses(PassManager &PM) {
  PM.add(createMethodDedupPass());
  PM.add(createDeadIndexEliminationPass());
  PM.add(createLockPlanPrecomputePass());
}
