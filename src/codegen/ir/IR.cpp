//===- codegen/ir/IR.cpp - Typed codegen IR helpers ---------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/ir/IR.h"

using namespace relc;
using namespace relc::ir;

const char *ir::lockModeName(LockPlan::Kind K) {
  switch (K) {
  case LockPlan::Unset:
    return "unset";
  case LockPlan::None:
    return "none";
  case LockPlan::SharedOne:
    return "shared(1)";
  case LockPlan::SharedEach:
    return "shared(each)";
  case LockPlan::ExclusiveOne:
    return "exclusive(1)";
  case LockPlan::ExclusiveSet:
    return "exclusive(set)";
  case LockPlan::ExclusiveAll:
    return "exclusive(all)";
  }
  return "?";
}

bool Module::hasTransactions() const {
  for (const MethodOp &Op : Ops)
    if (Op.Kind == OpKind::TransactBy)
      return true;
  return false;
}

const MethodOp *Module::find(OpKind K, Layer L, ColumnSet Key,
                             unsigned Arity) const {
  for (const MethodOp &Op : Ops) {
    if (Op.Kind != K || Op.Where != L || !(Op.Key == Key))
      continue;
    if (Arity != 0 && Op.Arity != Arity)
      continue;
    return &Op;
  }
  return nullptr;
}

const MethodOp *Module::findByName(Layer L, const std::string &Name) const {
  for (const MethodOp &Op : Ops)
    if (Op.Where == L && Op.Name == Name)
      return &Op;
  return nullptr;
}
