//===- codegen/ir/Passes.h - IR pass pipeline -------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline run between lowering and emission. Two kinds of
/// pass:
///
///  - *canonicalization* passes establish invariants backends rely on
///    (no duplicate methods; every facade op carries a lock plan) and
///    always run, even under `relc --no-opt`;
///  - *optimization* passes improve the emitted artifact (dead-index
///    elimination) and are skipped by `--no-opt` — which is also why
///    `--no-opt` output matches the historical emitter byte for byte.
///
/// Each pass is unit-testable on a bare ir::Module (tests/codegen/
/// IrPassTest.cpp); passes log what they change into Module::PassLog.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_IR_PASSES_H
#define RELC_CODEGEN_IR_PASSES_H

#include "codegen/ir/IR.h"

#include <memory>
#include <string_view>

namespace relc::ir {

class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  /// Canonicalization passes run even under --no-opt.
  virtual bool isCanonicalization() const { return false; }
  /// Returns true when the module changed. Log actions into
  /// \p M.PassLog, prefixed with the pass name.
  virtual bool run(Module &M) = 0;
};

/// Merges ops lowered more than once for the same method — repeated
/// directives and the remove/upsert support closure both produce
/// duplicates. The first occurrence survives (preserving emission
/// order); provenance is ORed, so a requested duplicate upgrades a
/// support survivor. Canonicalization: backends assume unique names.
std::unique_ptr<Pass> createMethodDedupPass();

/// Removes Support ops nothing reaches: mark from Requested roots along
/// the calls-into edges (update -> remove; upsert -> lookup + remove +
/// insert; transact -> the sequential upsert pair; facade wrappers ->
/// their sequential counterparts), sweep the rest. Optimization pass —
/// the pruned ops are correct, just unreachable API surface.
std::unique_ptr<Pass> createDeadIndexEliminationPass();

/// Stamps a LockPlan on every op: routed-vs-fan-out (does the pattern
/// bind the shard column?), stripe bounds (transaction arity), and
/// erases ParallelScan ops that routing or empty outputs make
/// pointless. Canonicalization: backends refuse unstamped facade ops.
std::unique_ptr<Pass> createLockPlanPrecomputePass();

class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  /// Runs the pipeline in order; when \p RunOptimizations is false,
  /// non-canonicalization passes are skipped (and the skip is logged).
  /// Returns true when any pass changed the module.
  bool run(Module &M, bool RunOptimizations = true) const;
  size_t size() const { return Passes.size(); }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// The default pipeline: dedup, dead-index elimination, lock-plan
/// precompute (in that order — liveness wants merged provenance, lock
/// plans want the final op set).
void addDefaultPasses(PassManager &PM);

} // namespace relc::ir

#endif // RELC_CODEGEN_IR_PASSES_H
