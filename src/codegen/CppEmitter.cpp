//===- codegen/CppEmitter.cpp - RELC C++ code generation ---------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The static mirror of the dynamic engine: node structs instead of
// NodeInstance, concrete ds/ container members instead of EdgeMap
// virtual dispatch, and query/removal code specialized from the
// planner's chosen plans instead of the CPS interpreter in Exec.cpp.
//
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"

#include "decomp/Adequacy.h"
#include "query/Planner.h"
#include "runtime/Cut.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <map>
#include <string>

using namespace relc;

namespace {

/// Appends lines with block indentation.
class CodeWriter {
public:
  void line(const std::string &Text = "") {
    if (!Text.empty())
      for (unsigned I = 0; I != Indent; ++I)
        Out += "  ";
    Out += Text;
    Out += "\n";
  }
  void open(const std::string &Text) {
    line(Text);
    ++Indent;
  }
  void close(const std::string &Text = "}") {
    assert(Indent > 0 && "unbalanced close");
    --Indent;
    line(Text);
  }
  /// close-and-reopen for "} else {" style continuations.
  void chain(const std::string &Text) {
    close(Text);
    ++Indent;
  }

  std::string take() { return std::move(Out); }

private:
  std::string Out;
  unsigned Indent = 0;
};

class Emitter {
public:
  Emitter(const Decomposition &D, const EmitterOptions &Opts)
      : D(D), Opts(Opts), Cat(D.catalog()) {
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      for (PrimId U : D.unitsOf(Id))
        UnitOwner[U] = Id;
  }

  std::string run() {
    prologue();
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      emitNodeStruct(Id);
    emitDestroys();
    emitLifecycle();
    emitInsert();
    for (const QueryShape &Q : Opts.Queries)
      emitQuery(Q);
    for (ColumnSet Key : Opts.RemoveKeys)
      emitRemove(Key);
    for (ColumnSet Key : Opts.UpdateKeys)
      emitUpdate(Key);
    epilogue();
    return W.take();
  }

private:
  //===------------------------------------------------------------------===
  // Naming helpers.
  //===------------------------------------------------------------------===

  std::string nodeType(NodeId Id) const { return "Node_" + D.node(Id).Name; }

  std::string colList(ColumnSet Cols, const std::string &Prefix) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += ", ";
      Out += Prefix + Cat.name(C);
    }
    return Out;
  }

  std::string colsSuffix(ColumnSet Cols) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += "_";
      Out += Cat.name(C);
    }
    return Out;
  }

  std::string params(ColumnSet Cols, const std::string &Prefix) const {
    std::string Out;
    for (ColumnId C : Cols) {
      if (!Out.empty())
        Out += ", ";
      Out += "int64_t " + Prefix + Cat.name(C);
    }
    return Out;
  }

  /// The C++ key type of edge \p E (vectors index by size_t directly).
  std::string keyType(const MapEdge &E) const {
    if (E.Ds == DsKind::Vector)
      return "size_t";
    if (E.KeyCols.size() == 1)
      return "int64_t";
    return "std::array<int64_t, " + std::to_string(E.KeyCols.size()) + ">";
  }

  /// A key expression for edge \p E from per-column expressions.
  std::string keyExpr(const MapEdge &E,
                      const std::map<ColumnId, std::string> &Env) const {
    if (E.KeyCols.size() == 1) {
      const std::string &V = Env.at(E.KeyCols.first());
      return E.Ds == DsKind::Vector ? "toIndex(" + V + ")" : V;
    }
    std::string Out = keyType(E) + "{";
    bool First = true;
    for (ColumnId C : E.KeyCols) {
      if (!First)
        Out += ", ";
      Out += Env.at(C);
      First = false;
    }
    return Out + "}";
  }

  std::string edgeMember(EdgeId E) const { return "e" + std::to_string(E); }

  std::string unitField(PrimId U, ColumnId C) const {
    return "u" + std::to_string(U) + "_" + Cat.name(C);
  }

  std::string containerType(EdgeId Id) const {
    const MapEdge &E = D.edge(Id);
    std::string Traits = "TraitsE" + std::to_string(Id);
    switch (E.Ds) {
    case DsKind::DList:
      return "relc::DListMap<" + Traits + ">";
    case DsKind::HashTable:
      return "relc::HashMap<" + Traits + ">";
    case DsKind::Btree:
      return "relc::AvlMap<" + Traits + ">";
    case DsKind::Vector:
      return "relc::VectorMap<" + nodeType(E.To) + ">";
    case DsKind::IList:
      return "relc::IntrusiveList<" + Traits + ">";
    case DsKind::ITree:
      return "relc::IntrusiveAvl<" + Traits + ">";
    }
    assert(false && "unknown DsKind");
    return "";
  }

  static std::string upper(std::string S) {
    for (char &C : S)
      C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    return S;
  }

  /// The incoming edge of \p Id with the cheapest point lookup (the
  /// existence probe in the generated insert).
  EdgeId cheapestIncomingEdge(NodeId Id) const {
    auto Rank = [](DsKind K) {
      switch (K) {
      case DsKind::Vector:
      case DsKind::HashTable:
        return 0;
      case DsKind::Btree:
      case DsKind::ITree:
        return 1;
      case DsKind::DList:
      case DsKind::IList:
        return 2;
      }
      return 3;
    };
    EdgeId Best = D.incoming(Id).front();
    for (EdgeId E : D.incoming(Id))
      if (Rank(D.edge(E).Ds) < Rank(D.edge(Best).Ds))
        Best = E;
    return Best;
  }

  //===------------------------------------------------------------------===
  // Skeleton.
  //===------------------------------------------------------------------===

  void prologue() {
    W.line("// Generated by RELC for specification " + D.spec()->str());
    W.line("// Decomposition: " + D.canonicalString(/*IncludeDs=*/true));
    W.line("// Do not edit.");
    W.line("#ifndef RELCGEN_" + upper(Opts.ClassName) + "_H");
    W.line("#define RELCGEN_" + upper(Opts.ClassName) + "_H");
    W.line();
    W.line("#include \"ds/AvlMap.h\"");
    W.line("#include \"ds/DListMap.h\"");
    W.line("#include \"ds/HashMap.h\"");
    W.line("#include \"ds/IntrusiveAvl.h\"");
    W.line("#include \"ds/IntrusiveList.h\"");
    W.line("#include \"ds/VectorMap.h\"");
    W.line("#include \"support/Hashing.h\"");
    W.line();
    W.line("#include <array>");
    W.line("#include <cassert>");
    W.line("#include <cstddef>");
    W.line("#include <cstdint>");
    W.line("#include <vector>");
    W.line();
    W.open("namespace " + Opts.Namespace + " {");
    W.line();
    W.open("class " + Opts.ClassName + " {");
    W.line("public:");
    W.line("  " + Opts.ClassName + "(const " + Opts.ClassName +
           " &) = delete;");
    W.line("  " + Opts.ClassName + " &operator=(const " + Opts.ClassName +
           " &) = delete;");
    W.line("  size_t size() const { return Size; }");
    W.line("  bool empty() const { return Size == 0; }");
    W.line();
    W.line("private:");
    W.open("  static size_t toIndex(int64_t V) {");
    W.line("assert(V >= 0 && \"vector-mapped keys must be non-negative\");");
    W.line("return static_cast<size_t>(V);");
    W.close("}");
    W.line("  static size_t hashKey(int64_t K) {");
    W.line("    return relc::hashMix64(static_cast<uint64_t>(K));");
    W.line("  }");
    W.line("  template <size_t N>");
    W.open("  static size_t hashKey(const std::array<int64_t, N> &K) {");
    W.line("size_t H = 0;");
    W.line("for (int64_t V : K)");
    W.line("  H = relc::hashCombine(H, "
           "relc::hashMix64(static_cast<uint64_t>(V)));");
    W.line("return H;");
    W.close("}");
  }

  void epilogue() {
    W.line();
    W.line("  " + nodeType(D.root()) + " *Root;");
    W.line("  size_t Size = 0;");
    W.close("};");
    W.line();
    W.close("} // namespace " + Opts.Namespace);
    W.line();
    W.line("#endif");
  }

  void emitNodeStruct(NodeId Id) {
    W.line();
    // Traits for each outgoing edge; target node types are complete
    // here because children precede parents in let order.
    for (EdgeId E : D.outgoing(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (Edge.Ds == DsKind::Vector)
        continue;
      W.open("  struct TraitsE" + std::to_string(E) + " {");
      W.line("using KeyT = " + keyType(Edge) + ";");
      W.line("using NodeT = " + nodeType(Edge.To) + ";");
      W.line("static bool equal(const KeyT &A, const KeyT &B) "
             "{ return A == B; }");
      W.line("static bool less(const KeyT &A, const KeyT &B) "
             "{ return A < B; }");
      W.line("static size_t hash(const KeyT &K) { return hashKey(K); }");
      if (dsSupportsEraseByNode(Edge.Ds))
        W.line("static relc::MapHook<NodeT, KeyT> &hook(NodeT *N, unsigned) "
               "{ return N->h" +
               std::to_string(Edge.HookSlot) + "; }");
      W.close("};");
    }

    W.open("  struct " + nodeType(Id) + " {");
    // The bound valuation, as NodeInstance stores it: read by unit
    // steps (the extended (QUNIT) rule) and kept for symmetry with the
    // dynamic engine.
    for (ColumnId C : D.node(Id).Bound)
      W.line("int64_t b_" + Cat.name(C) + ";");
    for (PrimId U : D.unitsOf(Id))
      for (ColumnId C : D.prim(U).Cols)
        W.line("int64_t " + unitField(U, C) + ";");
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (!dsSupportsEraseByNode(Edge.Ds))
        continue;
      W.line("relc::MapHook<" + nodeType(Id) + ", " + keyType(Edge) + "> h" +
             std::to_string(Edge.HookSlot) + ";");
    }
    for (EdgeId E : D.outgoing(Id)) {
      const MapEdge &Edge = D.edge(E);
      std::string Init;
      if (dsSupportsEraseByNode(Edge.Ds))
        Init = "{" + std::to_string(Edge.HookSlot) + "}";
      W.line(containerType(E) + " " + edgeMember(E) + Init + ";");
    }
    W.line("unsigned Ref = 0;");
    W.close("};");
  }

  void emitDestroys() {
    // In-class member bodies may call members defined later, so the
    // destroy/release pairs can be emitted in any order.
    for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
      W.line();
      W.open("  void destroy(" + nodeType(Id) + " *N) {");
      if (D.outgoing(Id).empty()) {
        W.line("delete N;");
        W.close("}");
      } else {
        // Collect children before the containers (whose destructors
        // unlink intrusive hooks) die, then release them after N is
        // gone — mirroring InstanceGraph::destroy.
        for (EdgeId E : D.outgoing(Id)) {
          const MapEdge &Edge = D.edge(E);
          std::string CT = nodeType(Edge.To);
          W.line("std::vector<" + CT + " *> c" + std::to_string(E) + ";");
          W.open("N->" + edgeMember(E) + ".forEach([&](const auto &, " + CT +
                 " *Child) {");
          W.line("c" + std::to_string(E) + ".push_back(Child);");
          W.line("return true;");
          W.close("});");
        }
        W.line("delete N;");
        for (EdgeId E : D.outgoing(Id)) {
          W.line("for (auto *Child : c" + std::to_string(E) + ")");
          W.line("  release(Child);");
        }
        W.close("}");
      }
      W.line("  void release(" + nodeType(Id) +
             " *N) { if (--N->Ref == 0) destroy(N); }");
    }
  }

  void emitLifecycle() {
    W.line();
    W.line("public:");
    W.line("  " + Opts.ClassName + "() : Root(new " + nodeType(D.root()) +
           "()) { Root->Ref = 1; }");
    W.line("  ~" + Opts.ClassName + "() { release(Root); }");
    W.open("  void clear() {");
    W.line("release(Root);");
    W.line("Root = new " + nodeType(D.root()) + "();");
    W.line("Root->Ref = 1;");
    W.line("Size = 0;");
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // insert (Section 4.4, specialized).
  //===------------------------------------------------------------------===

  void emitInsert() {
    ColumnSet All = D.spec()->columns();
    W.line();
    W.line("  /// insert r t; returns true if the relation changed.");
    W.open("  bool insert(" + params(All, "v_") + ") {");
    std::map<ColumnId, std::string> Env;
    for (ColumnId C : All)
      Env[C] = "v_" + Cat.name(C);

    W.line("bool Changed = false;");
    for (NodeId Id : D.topoOrder()) {
      std::string Var = "n_" + D.node(Id).Name;
      if (Id == D.root()) {
        W.line(nodeType(Id) + " *" + Var + " = Root;");
        continue;
      }
      // One probe on the cheapest incoming edge decides existence
      // (well-formedness keeps all incoming containers in lockstep; a
      // fresh parent's empty container gives the same verdict — see
      // dinsert in runtime/Mutators.cpp).
      EdgeId ProbeE = cheapestIncomingEdge(Id);
      const MapEdge &Probe = D.edge(ProbeE);
      W.line(nodeType(Id) + " *" + Var + " = n_" +
             D.node(Probe.From).Name + "->" + edgeMember(ProbeE) +
             ".lookup(" + keyExpr(Probe, Env) + ");");
      W.open("if (!" + Var + ") {");
      W.line(Var + " = new " + nodeType(Id) + "();");
      for (ColumnId C : D.node(Id).Bound)
        W.line(Var + "->b_" + Cat.name(C) + " = " + Env.at(C) + ";");
      for (PrimId U : D.unitsOf(Id))
        for (ColumnId C : D.prim(U).Cols)
          W.line(Var + "->" + unitField(U, C) + " = " + Env.at(C) + ";");
      for (EdgeId E : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(E);
        std::string Parent = "n_" + D.node(Edge.From).Name;
        W.line(Parent + "->" + edgeMember(E) + ".insert(" +
               keyExpr(Edge, Env) + ", " + Var + ");");
        W.line("++" + Var + "->Ref;");
      }
      W.line("Changed = true;");
      if (!D.unitsOf(Id).empty()) {
        W.chain("} else {");
        // Lemma 4(a)'s precondition: an existing instance must already
        // carry exactly these unit values.
        for (PrimId U : D.unitsOf(Id))
          for (ColumnId C : D.prim(U).Cols)
            W.line("assert(" + Var + "->" + unitField(U, C) + " == " +
                   Env.at(C) +
                   " && \"insert violates the functional dependencies\");");
        W.close("}");
      } else {
        W.close("}");
      }
    }
    W.line("if (Changed) ++Size;");
    W.line("return Changed;");
    W.close("}");
  }

  //===------------------------------------------------------------------===
  // Query emission: CPS over plan steps, the static twin of Exec.cpp.
  //===------------------------------------------------------------------===

  using Env = std::map<ColumnId, std::string>;
  using Cont = std::function<void(const Env &)>;

  void emitQuery(const QueryShape &Q) {
    auto Plan = planQuery(D, Q.InputCols, Q.OutputCols, Opts.Params);
    assert(Plan && "requested query shape is not plannable");
    W.line();
    W.line("  /// " + Q.Name + ": plan " + Plan->str());
    std::string Params = params(Q.InputCols, "q_");
    if (!Params.empty())
      Params += ", ";
    W.open("  template <typename FnT> void " + Q.Name + "(" + Params +
           "FnT &&Emit) const {");
    Env E;
    for (ColumnId C : Q.InputCols)
      E[C] = "q_" + Cat.name(C);
    emitStep(*Plan, Plan->Root, "Root", E, [&](const Env &Final) {
      std::string Args;
      for (ColumnId C : Q.OutputCols) {
        if (!Args.empty())
          Args += ", ";
        Args += Final.at(C);
      }
      W.line("Emit(" + Args + ");");
    });
    W.close("}");
  }

  void emitStep(const QueryPlan &Plan, PlanStepId Id,
                const std::string &NodeVar, const Env &E, const Cont &K) {
    const PlanStep &S = Plan.Steps[Id];
    switch (S.Kind) {
    case PlanKind::Unit: {
      // Filter unit and bound columns already fixed by the binding;
      // bind the rest (the extended (QUNIT) rule — bound fields serve
      // columns not on the traversed path, e.g. `state` via Fig. 2's
      // left path).
      Env E2 = E;
      std::string Guard;
      auto handleColumn = [&](ColumnId C, const std::string &Field) {
        auto It = E.find(C);
        if (It != E.end()) {
          if (!Guard.empty())
            Guard += " && ";
          Guard += Field + " == " + It->second;
        } else if (!E2.count(C)) {
          E2[C] = Field;
        }
      };
      NodeId Owner = UnitOwner.at(S.Prim);
      for (ColumnId C : D.node(Owner).Bound)
        handleColumn(C, NodeVar + "->b_" + Cat.name(C));
      for (ColumnId C : D.prim(S.Prim).Cols)
        handleColumn(C, NodeVar + "->" + unitField(S.Prim, C));
      if (Guard.empty()) {
        K(E2);
        return;
      }
      W.open("if (" + Guard + ") {");
      K(E2);
      W.close("}");
      return;
    }
    case PlanKind::Lookup: {
      EdgeId Eg = D.prim(S.Prim).Edge;
      const MapEdge &Edge = D.edge(Eg);
      std::string Var = "n" + std::to_string(Id);
      W.line("auto *" + Var + " = " + NodeVar + "->" + edgeMember(Eg) +
             ".lookup(" + keyExpr(Edge, E) + ");");
      W.open("if (" + Var + ") {");
      emitStep(Plan, S.Child0, Var, E, K);
      W.close("}");
      return;
    }
    case PlanKind::Scan: {
      EdgeId Eg = D.prim(S.Prim).Edge;
      const MapEdge &Edge = D.edge(Eg);
      std::string KeyVar = "k" + std::to_string(Id);
      std::string Var = "n" + std::to_string(Id);
      W.open(NodeVar + "->" + edgeMember(Eg) + ".forEach([&](const auto &" +
             KeyVar + ", " + nodeType(Edge.To) + " *" + Var + ") {");
      // Subplans over empty units never touch the child node.
      W.line("(void)" + Var + ";");
      // Bind fresh key columns; filter ones the binding already fixes
      // (this is what keeps joins and A ⊆ B queries faithful, Lemma 2).
      Env E2 = E;
      std::string Guard;
      unsigned Index = 0;
      for (ColumnId C : Edge.KeyCols) {
        std::string Expr;
        if (Edge.Ds == DsKind::Vector)
          Expr = "static_cast<int64_t>(" + KeyVar + ")";
        else if (Edge.KeyCols.size() == 1)
          Expr = KeyVar;
        else
          Expr = KeyVar + "[" + std::to_string(Index) + "]";
        auto It = E.find(C);
        if (It != E.end()) {
          if (!Guard.empty())
            Guard += " && ";
          Guard += Expr + " == " + It->second;
        } else {
          E2[C] = Expr;
        }
        ++Index;
      }
      if (!Guard.empty())
        W.open("if (" + Guard + ") {");
      emitStep(Plan, S.Child0, Var, E2, K);
      if (!Guard.empty())
        W.close("}");
      W.line("return true;");
      W.close("});");
      return;
    }
    case PlanKind::Lr:
      emitStep(Plan, S.Child0, NodeVar, E, K);
      return;
    case PlanKind::Join:
      // Nested execution: the second query runs once per binding the
      // first produces.
      emitStep(Plan, S.Child0, NodeVar, E, [&](const Env &E1) {
        emitStep(Plan, S.Child1, NodeVar, E1, K);
      });
      return;
    }
    assert(false && "unknown PlanKind");
  }

  //===------------------------------------------------------------------===
  // remove_by_<key> / update_by_<key> (Section 4.5, specialized).
  //===------------------------------------------------------------------===

  void emitRemove(ColumnSet Key) {
    ColumnSet All = D.spec()->columns();
    assert(D.spec()->fds().isKey(Key, All) &&
           "remove_by_* requires a key pattern");
    auto Plan = planQuery(D, Key, All, Opts.Params);
    assert(Plan && "no plan to resolve the full tuple for removal");
    Cut C = computeCut(D, Key);

    W.line();
    W.line("  /// remove r s for key pattern {" + colsSuffix(Key) +
           "}; returns true if a tuple was removed.");
    W.open("  bool remove_by_" + colsSuffix(Key) + "(" + params(Key, "q_") +
           ") {");

    // 1. Resolve the full tuple (the pattern is a key: at most one).
    W.line("bool Found = false;");
    for (ColumnId Col : All.minus(Key))
      W.line("int64_t c_" + Cat.name(Col) + " = 0;");
    Env E;
    for (ColumnId Col : Key)
      E[Col] = "q_" + Cat.name(Col);
    emitStep(*Plan, Plan->Root, "Root", E, [&](const Env &Final) {
      W.line("Found = true;");
      for (ColumnId Col : All.minus(Key))
        W.line("c_" + Cat.name(Col) + " = " + Final.at(Col) + ";");
    });
    W.line("if (!Found) return false;");
    // Columns resolved for navigation may go unused when every edge on
    // the removal path is keyed by the pattern itself.
    for (ColumnId Col : All.minus(Key))
      W.line("(void)c_" + Cat.name(Col) + ";");

    Env Full;
    for (ColumnId Col : Key)
      Full[Col] = "q_" + Cat.name(Col);
    for (ColumnId Col : All.minus(Key))
      Full[Col] = "c_" + Cat.name(Col);

    // 2. Navigate the X instances along the tuple's path (Fig. 10).
    for (NodeId Id : D.topoOrder()) {
      if (C.inY(Id))
        continue;
      std::string Var = "x_" + D.node(Id).Name;
      if (Id == D.root()) {
        W.line(nodeType(Id) + " *" + Var + " = Root;");
        continue;
      }
      W.line(nodeType(Id) + " *" + Var + " = nullptr;");
      for (EdgeId Eg : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(Eg);
        W.line("if (!" + Var + ") " + Var + " = x_" +
               D.node(Edge.From).Name + "->" + edgeMember(Eg) + ".lookup(" +
               keyExpr(Edge, Full) + ");");
      }
      W.line("assert(" + Var + " && \"X instance missing\");");
    }

    // 3. Break the crossing edges; the first break per Y node resolves
    //    the child, later breaks reuse it (eraseNode when intrusive).
    std::map<NodeId, bool> YResolved;
    for (EdgeId Eg : C.CrossingEdges) {
      const MapEdge &Edge = D.edge(Eg);
      std::string Child = "y_" + D.node(Edge.To).Name;
      std::string From = "x_" + D.node(Edge.From).Name;
      if (!YResolved[Edge.To]) {
        W.line(nodeType(Edge.To) + " *" + Child + " = " + From + "->" +
               edgeMember(Eg) + ".erase(" + keyExpr(Edge, Full) + ");");
        W.line("assert(" + Child + " && \"crossing entry missing\");");
        YResolved[Edge.To] = true;
      } else if (dsSupportsEraseByNode(Edge.Ds)) {
        W.line(From + "->" + edgeMember(Eg) + ".eraseNode(" + Child + ");");
      } else {
        W.line(From + "->" + edgeMember(Eg) + ".erase(" +
               keyExpr(Edge, Full) + ");");
      }
      W.line("release(" + Child + ");");
    }

    // 4. Clean up interior X nodes now devoid of children (children
    //    first; the root always stays).
    for (NodeId Id = 0; Id + 1 < D.numNodes(); ++Id) {
      if (C.inY(Id) || D.outgoing(Id).empty())
        continue;
      std::string Var = "x_" + D.node(Id).Name;
      std::string EmptyCheck;
      for (EdgeId Eg : D.outgoing(Id)) {
        if (!EmptyCheck.empty())
          EmptyCheck += " || ";
        EmptyCheck += Var + "->" + edgeMember(Eg) + ".empty()";
      }
      W.open("if (" + EmptyCheck + ") {");
      for (EdgeId Eg : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(Eg);
        std::string From = "x_" + D.node(Edge.From).Name;
        if (dsSupportsEraseByNode(Edge.Ds))
          W.line(From + "->" + edgeMember(Eg) + ".eraseNode(" + Var + ");");
        else
          W.line(From + "->" + edgeMember(Eg) + ".erase(" +
                 keyExpr(Edge, Full) + ");");
        W.line("release(" + Var + ");");
      }
      W.close("}");
    }

    W.line("--Size;");
    W.line("return true;");
    W.close("}");
  }

  void emitUpdate(ColumnSet Key) {
    ColumnSet All = D.spec()->columns();
    ColumnSet Rest = All.minus(Key);
    W.line();
    W.line("  /// update r s u for key pattern {" + colsSuffix(Key) +
           "}, replacing every non-key column (remove + reinsert,");
    W.line("  /// semantically equal per Section 4.5); returns true if a");
    W.line("  /// tuple matched.");
    std::string Params = params(Key, "q_");
    if (!Rest.empty())
      Params += ", " + params(Rest, "v_");
    W.open("  bool update_by_" + colsSuffix(Key) + "(" + Params + ") {");
    W.line("if (!remove_by_" + colsSuffix(Key) + "(" + colList(Key, "q_") +
           ")) return false;");
    std::string Args;
    for (ColumnId C : All) {
      if (!Args.empty())
        Args += ", ";
      Args += (Key.contains(C) ? "q_" : "v_") + Cat.name(C);
    }
    W.line("insert(" + Args + ");");
    W.line("return true;");
    W.close("}");
  }

  const Decomposition &D;
  const EmitterOptions &Opts;
  const Catalog &Cat;
  CodeWriter W;
  std::map<PrimId, NodeId> UnitOwner;
};

} // namespace

std::string relc::emitCpp(const Decomposition &D, const EmitterOptions &Opts) {
  assert(checkAdequacy(D).Ok &&
         "emitting code for an inadequate decomposition");
  return Emitter(D, Opts).run();
}
