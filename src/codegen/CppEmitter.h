//===- codegen/CppEmitter.h - RELC C++ code generation ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RELC compiler backend (Section 6): given a relational
/// specification and a decomposition, emits a standalone C++ class that
/// implements the relational interface with static types — node structs
/// with embedded intrusive hooks, concrete container templates from
/// ds/, and query/removal code specialized from the planner's chosen
/// plans (no virtual dispatch, no run-time planning).
///
/// Scope of the generated code:
///  - columns are int64_t (the paper's case studies are integer-keyed;
///    interned strings fit through their ids);
///  - `insert` and the requested query shapes are emitted for any
///    adequate decomposition;
///  - `remove_by_*` is emitted for *key* patterns (at most one matching
///    tuple), which covers the paper's clients; bulk removal and
///    in-place update remain the dynamic engine's job;
///  - `update_by_*` composes remove + insert (semantically equal,
///    Section 4.5; the dynamic engine implements the in-place form).
///
/// The emitted header depends only on the ds/ container headers and is
/// compiled and replayed against the oracle in an integration test.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_CPPEMITTER_H
#define RELC_CODEGEN_CPPEMITTER_H

#include "decomp/Decomposition.h"
#include "query/CostModel.h"

#include <string>
#include <vector>

namespace relc {

/// One query method to synthesize: inputs bound by the pattern, outputs
/// delivered to the callback.
struct QueryShape {
  std::string Name; ///< Method name, e.g. "query_by_src".
  ColumnSet InputCols;
  ColumnSet OutputCols;
};

struct EmitterOptions {
  std::string ClassName = "relation";
  std::string Namespace = "relcgen";
  std::vector<QueryShape> Queries;
  /// Key patterns to emit remove_by_<cols> for (each must functionally
  /// determine all columns).
  std::vector<ColumnSet> RemoveKeys;
  /// Emit update_by_<cols>(keys..., values...) for these key patterns
  /// (updates every non-key column).
  std::vector<ColumnSet> UpdateKeys;
  CostParams Params;
};

/// Emits the complete header text. Asserts that \p D is adequate and
/// that every requested shape is plannable.
std::string emitCpp(const Decomposition &D, const EmitterOptions &Opts);

} // namespace relc

#endif // RELC_CODEGEN_CPPEMITTER_H
