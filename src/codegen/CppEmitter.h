//===- codegen/CppEmitter.h - RELC C++ code generation ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RELC compiler backend (Section 6): given a relational
/// specification and a decomposition, emits a standalone C++ class that
/// implements the relational interface with static types — node structs
/// with embedded intrusive hooks, concrete container templates from
/// ds/, and query/removal code specialized from the planner's chosen
/// plans (no virtual dispatch, no run-time planning).
///
/// Scope of the generated code:
///  - columns are int64_t (the paper's case studies are integer-keyed;
///    interned strings fit through their ids);
///  - `insert` and the requested query shapes are emitted for any
///    adequate decomposition;
///  - `remove_by_*` is emitted for *key* patterns (at most one matching
///    tuple), which covers the paper's clients; bulk removal and
///    in-place update remain the dynamic engine's job;
///  - `update_by_*` composes remove + insert (semantically equal,
///    Section 4.5; the dynamic engine implements the in-place form);
///  - `upsert_by_*` is the atomic read-modify-write primitive: resolve
///    the current non-key values, hand them to a caller callback, and
///    reinsert (the static twin of SynthesizedRelation::upsert);
///  - with ConcurrentShards > 0 a sharded thread-safe facade class
///    `<ClassName>_concurrent` is emitted alongside: shard router +
///    striped reader-writer locks + N sequential sub-instances,
///    mirroring src/concurrent/ConcurrentRelation, with parallel
///    fan-out variants of non-routed queries;
///  - `transact_by_*` (TransactKeys) adds the atomic two-key
///    read-modify-write on the facade: both shard stripes acquired in
///    ascending order (two-phase locking), both tuples resolved, one
///    callback, both written back — the static twin of
///    ConcurrentRelation::transact for the transfer-shaped batch.
///
/// The emitted header depends only on the ds/ container headers —
/// plus, in concurrent mode, concurrent/StripedLock.h,
/// concurrent/BoundedQueue.h, <thread>, and <atomic> (link consumers
/// with -pthread) — and is compiled and replayed against the oracle
/// in integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_CPPEMITTER_H
#define RELC_CODEGEN_CPPEMITTER_H

#include "decomp/Decomposition.h"
#include "query/CostModel.h"

#include <optional>
#include <string>
#include <vector>

namespace relc {

/// One query method to synthesize: inputs bound by the pattern, outputs
/// delivered to the callback.
struct QueryShape {
  std::string Name; ///< Method name, e.g. "query_by_src".
  ColumnSet InputCols;
  ColumnSet OutputCols;
};

struct EmitterOptions {
  std::string ClassName = "relation";
  std::string Namespace = "relcgen";
  std::vector<QueryShape> Queries;
  /// Key patterns to emit remove_by_<cols> for (each must functionally
  /// determine all columns).
  std::vector<ColumnSet> RemoveKeys;
  /// Emit update_by_<cols>(keys..., values...) for these key patterns
  /// (updates every non-key column).
  std::vector<ColumnSet> UpdateKeys;
  /// Emit the atomic read-modify-write pair lookup_by_<cols> /
  /// upsert_by_<cols>(keys..., fn) for these key patterns. The
  /// supporting remove_by_<cols> is emitted automatically (as it is
  /// for update keys).
  std::vector<ColumnSet> UpsertKeys;
  /// Emit, on the concurrent facade, the atomic two-key
  /// read-modify-write `transact_by_<cols>(a_keys..., b_keys..., fn)`
  /// for these key patterns (transfer-style multi-key transactions:
  /// both tuples are resolved, fn runs once over both sides, both are
  /// written back — all under the writer locks of exactly the owning
  /// shard stripes, acquired in ascending order). Requires
  /// ConcurrentShards > 0; the supporting lookup/upsert/remove
  /// methods are emitted automatically on the sequential class.
  std::vector<ColumnSet> TransactKeys;
  /// When positive, also emit a sharded thread-safe facade class
  /// `<ClassName>_concurrent` wrapping this many generated
  /// sub-instances behind striped reader-writer locks — the static
  /// mirror of src/concurrent/ConcurrentRelation. Fan-out queries
  /// additionally get a `<name>_parallel` variant (one worker per
  /// shard, bounded merge queue).
  unsigned ConcurrentShards = 0;
  /// Shard column of the emitted facade; defaults to
  /// ShardRouter::defaultShardColumn of the decomposition.
  std::optional<ColumnId> ConcurrentShardColumn;
  CostParams Params;
};

/// Emits the complete header text. Asserts that \p D is adequate and
/// that every requested shape is plannable.
std::string emitCpp(const Decomposition &D, const EmitterOptions &Opts);

} // namespace relc

#endif // RELC_CODEGEN_CPPEMITTER_H
