//===- codegen/Options.h - RELC method-set options --------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The method set a relc compilation synthesizes, as resolved from the
/// spec file (or built programmatically): which queries, key-pattern
/// mutators, transactions, and concurrency configuration the generated
/// class must offer. This is pure front-end data — the Lowering stage
/// (codegen/ir/Lowering.h) turns it into the typed IR the passes and
/// backends consume.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CODEGEN_OPTIONS_H
#define RELC_CODEGEN_OPTIONS_H

#include "query/CostModel.h"
#include "rel/ColumnSet.h"

#include <optional>
#include <string>
#include <vector>

namespace relc {

/// One query method to synthesize: inputs bound by the pattern, outputs
/// delivered to the callback.
struct QueryShape {
  std::string Name; ///< Method name, e.g. "query_by_src".
  ColumnSet InputCols;
  ColumnSet OutputCols;
};

/// One multi-key transaction shape: an atomic read-modify-write over
/// \p Arity tuples addressed by the same key pattern (the `transaction
/// c1, c2 [x N]` directive). Arity 2 is the classic transfer; larger
/// arities cover settlement-style batches.
struct TransactShape {
  ColumnSet Key;
  unsigned Arity = 2;
};

/// Maximum number of key tuples a `transaction` directive may name:
/// the generated signature takes Arity copies of the key columns and
/// the callback takes Arity (Found, values...) groups, so the bound is
/// a readability cap, not a locking limit.
inline constexpr unsigned MaxTransactArity = 8;

struct EmitterOptions {
  std::string ClassName = "relation";
  std::string Namespace = "relcgen";
  std::vector<QueryShape> Queries;
  /// Key patterns to emit remove_by_<cols> for (each must functionally
  /// determine all columns).
  std::vector<ColumnSet> RemoveKeys;
  /// Emit update_by_<cols>(keys..., values...) for these key patterns
  /// (updates every non-key column).
  std::vector<ColumnSet> UpdateKeys;
  /// Emit the atomic read-modify-write pair lookup_by_<cols> /
  /// upsert_by_<cols>(keys..., fn) for these key patterns. The
  /// supporting remove_by_<cols> is lowered automatically (as it is
  /// for update keys).
  std::vector<ColumnSet> UpsertKeys;
  /// Emit, on the concurrent facade, the atomic N-key
  /// read-modify-write `transact_by_<cols>` / `transact<N>_by_<cols>`
  /// for these shapes (multi-key transactions: every tuple is
  /// resolved, fn runs once over all sides, all are written back —
  /// under the writer locks of exactly the owning shard stripes,
  /// acquired in ascending order). Requires ConcurrentShards > 0; the
  /// supporting lookup/upsert/remove methods are lowered
  /// automatically on the sequential class.
  std::vector<TransactShape> Transactions;
  /// When positive, also emit a sharded thread-safe facade class
  /// `<ClassName>_concurrent` wrapping this many generated
  /// sub-instances behind striped reader-writer locks — the static
  /// mirror of src/concurrent/ConcurrentRelation. Fan-out queries
  /// additionally get a `<name>_parallel` variant (one worker per
  /// shard, bounded merge queue).
  unsigned ConcurrentShards = 0;
  /// Shard column of the emitted facade; defaults to
  /// ShardRouter::defaultShardColumn of the decomposition.
  std::optional<ColumnId> ConcurrentShardColumn;
  /// Also emit `<ClassName>_wire`, a constexpr dispatch table mapping
  /// relserved wire opcodes (src/server/Wire.h) to the facade methods
  /// that implement them — the `wire` directive. Requires a facade.
  bool WireDispatch = false;
  CostParams Params;
};

} // namespace relc

#endif // RELC_CODEGEN_OPTIONS_H
