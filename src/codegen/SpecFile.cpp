//===- codegen/SpecFile.cpp - RELC input file front end -----------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpecFile.h"

#include "decomp/Parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

using namespace relc;

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool consumeWord(std::string_view &S, std::string_view Word) {
  std::string_view T = trim(S);
  if (T.substr(0, Word.size()) != Word)
    return false;
  // Must end at a word boundary.
  if (T.size() > Word.size() &&
      (std::isalnum(static_cast<unsigned char>(T[Word.size()])) ||
       T[Word.size()] == '_'))
    return false;
  S = T.substr(Word.size());
  return true;
}

/// Splits "a, b, c" into names; returns false on empty elements.
bool splitNames(std::string_view Text, std::vector<std::string> &Out) {
  size_t Start = 0;
  std::string S(Text);
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    std::string Name(
        trim(std::string_view(S).substr(Start, Comma - Start)));
    if (Name.empty())
      return false;
    Out.push_back(std::move(Name));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return !Out.empty();
}

class SpecFileParser {
public:
  explicit SpecFileParser(std::string_view Text) : Text(Text) {}

  SpecFileResult run() {
    std::string DecompText;
    unsigned LineNo = 0;

    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      std::string_view Raw = Text.substr(
          Pos, Eol == std::string_view::npos ? std::string_view::npos
                                             : Eol - Pos);
      Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
      ++LineNo;

      std::string_view Line = trim(Raw);
      if (Line.empty() || Line.front() == '#')
        continue;

      std::string_view Rest = Line;
      if (consumeWord(Rest, "relation")) {
        if (!parseRelation(trim(Rest)))
          return fail(LineNo, "malformed relation declaration");
      } else if (consumeWord(Rest, "fd")) {
        Fds.emplace_back(trim(Rest));
      } else if (consumeWord(Rest, "let")) {
        DecompText += std::string(Line) + "\n";
      } else if (consumeWord(Rest, "class")) {
        Out.Options.ClassName = std::string(trim(Rest));
        if (Out.Options.ClassName.empty())
          return fail(LineNo, "empty class name");
      } else if (consumeWord(Rest, "namespace")) {
        Out.Options.Namespace = std::string(trim(Rest));
        if (Out.Options.Namespace.empty())
          return fail(LineNo, "empty namespace");
      } else if (consumeWord(Rest, "query")) {
        PendingQueries.emplace_back(LineNo, std::string(trim(Rest)));
      } else if (consumeWord(Rest, "remove")) {
        PendingRemoves.emplace_back(LineNo, std::string(trim(Rest)));
      } else if (consumeWord(Rest, "update")) {
        PendingUpdates.emplace_back(LineNo, std::string(trim(Rest)));
      } else if (consumeWord(Rest, "upsert")) {
        PendingUpserts.emplace_back(LineNo, std::string(trim(Rest)));
      } else if (consumeWord(Rest, "transaction")) {
        PendingTransacts.emplace_back(LineNo, std::string(trim(Rest)));
      } else if (consumeWord(Rest, "concurrency")) {
        std::string Err;
        if (!parseConcurrency(LineNo, Rest, Err))
          return fail(LineNo,
                      Err.empty()
                          ? "malformed concurrency directive (expected "
                            "'concurrency sharded <N> [on <column>]'): '" +
                                std::string(Line) + "'"
                          : Err);
      } else {
        return fail(LineNo, "unknown directive: '" + std::string(Line) +
                                "'");
      }
    }

    if (Columns.empty())
      return fail(0, "missing 'relation' declaration");

    // Build the spec.
    std::vector<std::pair<std::string, std::string>> FdPairs;
    for (const std::string &Fd : Fds) {
      size_t Arrow = Fd.find("->");
      if (Arrow == std::string::npos)
        return fail(0, "fd is missing '->': " + Fd);
      FdPairs.emplace_back(std::string(trim(
                               std::string_view(Fd).substr(0, Arrow))),
                           std::string(trim(
                               std::string_view(Fd).substr(Arrow + 2))));
    }
    Out.Spec = RelSpec::make(RelationName, Columns, FdPairs);

    // Parse the decomposition in the Fig. 3 language.
    if (DecompText.empty())
      return fail(0, "missing 'let' bindings (no decomposition)");
    ParseResult Parsed = parseDecomposition(Out.Spec, DecompText);
    if (!Parsed.ok())
      return fail(0, "decomposition: " + Parsed.Error);
    Out.Decomp = std::move(Parsed.Decomp);

    // Resolve the method set against the catalog.
    const Catalog &Cat = Out.Spec->catalog();
    for (const auto &[No, Q] : PendingQueries) {
      // name (in, cols) -> (out, cols)
      size_t Open = Q.find('(');
      if (Open == std::string::npos)
        return fail(No, "query needs '(inputs) -> (outputs)'");
      std::string Name(trim(std::string_view(Q).substr(0, Open)));
      size_t Close = Q.find(')', Open);
      size_t Arrow = Q.find("->", Close);
      size_t Open2 = Q.find('(', Arrow == std::string::npos ? Q.size()
                                                            : Arrow);
      size_t Close2 = Q.find(')', Open2);
      if (Name.empty() || Close == std::string::npos ||
          Arrow == std::string::npos || Open2 == std::string::npos ||
          Close2 == std::string::npos)
        return fail(No, "malformed query directive");
      ColumnSet In, OutCols;
      if (!parseCols(Cat, Q.substr(Open + 1, Close - Open - 1), In))
        return fail(No, "unknown column in query inputs");
      if (!parseCols(Cat, Q.substr(Open2 + 1, Close2 - Open2 - 1), OutCols))
        return fail(No, "unknown column in query outputs");
      if (OutCols.empty())
        return fail(No, "query outputs are empty");
      Out.Options.Queries.push_back({Name, In, OutCols});
    }
    for (const auto &[No, R] : PendingRemoves) {
      ColumnSet Key;
      if (!parseCols(Cat, R, Key) || Key.empty())
        return fail(No, "malformed remove key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(No, "remove pattern {" + R + "} is not a key");
      Out.Options.RemoveKeys.push_back(Key);
    }
    for (const auto &[No, U] : PendingUpdates) {
      ColumnSet Key;
      if (!parseCols(Cat, U, Key) || Key.empty())
        return fail(No, "malformed update key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(No, "update pattern {" + U + "} is not a key");
      Out.Options.UpdateKeys.push_back(Key);
    }
    for (const auto &[No, U] : PendingUpserts) {
      ColumnSet Key;
      if (!parseCols(Cat, U, Key) || Key.empty())
        return fail(No, "malformed upsert key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(No, "upsert pattern {" + U + "} is not a key");
      Out.Options.UpsertKeys.push_back(Key);
    }
    for (const auto &[No, T] : PendingTransacts) {
      ColumnSet Key;
      if (!parseCols(Cat, T, Key) || Key.empty())
        return fail(No, "malformed transaction key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(No, "transaction pattern {" + T + "} is not a key");
      Out.Options.TransactKeys.push_back(Key);
    }
    if (!ShardColumnName.empty()) {
      std::optional<ColumnId> Id = Cat.find(ShardColumnName);
      if (!Id)
        return fail(ConcurrencyLine, "unknown shard column '" +
                                         ShardColumnName + "'");
      Out.Options.ConcurrentShardColumn = *Id;
    }

    return {std::move(Out), ""};
  }

private:
  SpecFileResult fail(unsigned LineNo, const std::string &Msg) {
    if (LineNo == 0)
      return {std::nullopt, Msg};
    return {std::nullopt, "line " + std::to_string(LineNo) + ": " + Msg};
  }

  /// `sharded <N> [on <column>]` (the word `concurrency` is already
  /// consumed). The column is resolved against the catalog after the
  /// relation declaration is built. On failure \p Err is set when a
  /// more specific diagnostic than the grammar message applies.
  bool parseConcurrency(unsigned LineNo, std::string_view Rest,
                        std::string &Err) {
    // The last directive wins outright: clear any earlier `on` clause
    // so a bare `concurrency sharded N` falls back to the default
    // shard column as documented.
    ShardColumnName.clear();
    if (!consumeWord(Rest, "sharded"))
      return false;
    std::string_view T = trim(Rest);
    size_t Len = 0;
    unsigned Shards = 0;
    while (Len != T.size() &&
           std::isdigit(static_cast<unsigned char>(T[Len]))) {
      // Saturate: only the [1, 4096] range check below matters.
      Shards = std::min(Shards * 10 + static_cast<unsigned>(T[Len] - '0'),
                        100000u);
      ++Len;
    }
    if (Len == 0)
      return false;
    if (Shards == 0 || Shards > 4096) {
      Err = "shard count must be in [1, 4096] (the facade holds a "
            "sub-instance and a padded lock per shard)";
      return false;
    }
    T = trim(T.substr(Len));
    if (!T.empty()) {
      if (!consumeWord(T, "on"))
        return false;
      T = trim(T);
      if (T.empty())
        return false;
      ShardColumnName = std::string(T);
    }
    Out.Options.ConcurrentShards = Shards;
    ConcurrencyLine = LineNo;
    return true;
  }

  bool parseRelation(std::string_view Decl) {
    size_t Open = Decl.find('(');
    size_t Close = Decl.rfind(')');
    if (Open == std::string_view::npos || Close == std::string_view::npos ||
        Close < Open)
      return false;
    RelationName = std::string(trim(Decl.substr(0, Open)));
    if (RelationName.empty())
      return false;
    return splitNames(Decl.substr(Open + 1, Close - Open - 1), Columns);
  }

  static bool parseCols(const Catalog &Cat, std::string_view Text,
                        ColumnSet &Out) {
    std::vector<std::string> Names;
    std::string_view T = trim(Text);
    if (T.empty()) {
      Out = ColumnSet();
      return true;
    }
    if (!splitNames(T, Names))
      return false;
    for (const std::string &N : Names) {
      std::optional<ColumnId> Id = Cat.find(N);
      if (!Id)
        return false;
      Out.insert(*Id);
    }
    return true;
  }

  std::string_view Text;
  std::string RelationName;
  std::vector<std::string> Columns;
  std::vector<std::string> Fds;
  std::vector<std::pair<unsigned, std::string>> PendingQueries;
  std::vector<std::pair<unsigned, std::string>> PendingRemoves;
  std::vector<std::pair<unsigned, std::string>> PendingUpdates;
  std::vector<std::pair<unsigned, std::string>> PendingUpserts;
  std::vector<std::pair<unsigned, std::string>> PendingTransacts;
  std::string ShardColumnName;
  unsigned ConcurrencyLine = 0;
  SpecFile Out;
};

} // namespace

SpecFileResult relc::parseSpecFile(std::string_view Text) {
  return SpecFileParser(Text).run();
}
