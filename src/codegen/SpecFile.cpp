//===- codegen/SpecFile.cpp - RELC input file front end -----------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Positions: every pending directive records the 1-based line and the
// column of its payload (the text after the keyword), computed by
// pointer arithmetic — all the string_views here are subviews of the
// one input buffer. Errors resolved later (unknown column, non-key
// pattern) are anchored at that payload.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpecFile.h"

#include "decomp/Parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

using namespace relc;

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool consumeWord(std::string_view &S, std::string_view Word) {
  std::string_view T = trim(S);
  if (T.substr(0, Word.size()) != Word)
    return false;
  // Must end at a word boundary.
  if (T.size() > Word.size() &&
      (std::isalnum(static_cast<unsigned char>(T[Word.size()])) ||
       T[Word.size()] == '_'))
    return false;
  S = T.substr(Word.size());
  return true;
}

/// Splits "a, b, c" into names; returns false on empty elements.
bool splitNames(std::string_view Text, std::vector<std::string> &Out) {
  size_t Start = 0;
  std::string S(Text);
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    std::string Name(
        trim(std::string_view(S).substr(Start, Comma - Start)));
    if (Name.empty())
      return false;
    Out.push_back(std::move(Name));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return !Out.empty();
}

/// A directive payload with its source anchor.
struct Pending {
  unsigned Line;
  unsigned Col;
  std::string Text;
};

/// A `transaction` payload: key columns + optional arity suffix.
struct PendingTransact {
  unsigned Line;
  unsigned Col;
  std::string Cols;
  unsigned Arity;
};

class SpecFileParser {
public:
  explicit SpecFileParser(std::string_view Text) : Text(Text) {}

  SpecFileResult run() {
    std::string DecompText;
    unsigned LineNo = 0;

    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      std::string_view Raw = Text.substr(
          Pos, Eol == std::string_view::npos ? std::string_view::npos
                                             : Eol - Pos);
      Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
      ++LineNo;

      std::string_view Line = trim(Raw);
      if (Line.empty() || Line.front() == '#')
        continue;

      // 1-based column of a subview of Raw (shared buffer).
      auto colOf = [&](std::string_view Sub) -> unsigned {
        if (Sub.empty())
          return static_cast<unsigned>(Line.data() - Raw.data()) + 1;
        return static_cast<unsigned>(Sub.data() - Raw.data()) + 1;
      };
      auto pendingOf = [&](std::string_view Rest) {
        std::string_view Payload = trim(Rest);
        return Pending{LineNo, colOf(Payload), std::string(Payload)};
      };

      std::string_view Rest = Line;
      if (consumeWord(Rest, "relation")) {
        if (!parseRelation(trim(Rest)))
          return fail(LineNo, colOf(trim(Rest)),
                      "malformed relation declaration");
      } else if (consumeWord(Rest, "fd")) {
        Fds.push_back(pendingOf(Rest));
      } else if (consumeWord(Rest, "let")) {
        if (FirstLetLine == 0) {
          FirstLetLine = LineNo;
          FirstLetCol = colOf(Line);
        }
        DecompText += std::string(Line) + "\n";
      } else if (consumeWord(Rest, "class")) {
        Out.Options.ClassName = std::string(trim(Rest));
        if (Out.Options.ClassName.empty())
          return fail(LineNo, colOf(Line), "empty class name");
      } else if (consumeWord(Rest, "namespace")) {
        Out.Options.Namespace = std::string(trim(Rest));
        if (Out.Options.Namespace.empty())
          return fail(LineNo, colOf(Line), "empty namespace");
      } else if (consumeWord(Rest, "query")) {
        PendingQueries.push_back(pendingOf(Rest));
      } else if (consumeWord(Rest, "remove")) {
        PendingRemoves.push_back(pendingOf(Rest));
      } else if (consumeWord(Rest, "upsert")) {
        PendingUpserts.push_back(pendingOf(Rest));
      } else if (consumeWord(Rest, "update")) {
        PendingUpdates.push_back(pendingOf(Rest));
      } else if (consumeWord(Rest, "transaction")) {
        Pending P = pendingOf(Rest);
        unsigned Arity = 2;
        std::string ColsText;
        std::string Err;
        if (!splitTransactArity(P.Text, ColsText, Arity, Err))
          return fail(P.Line, P.Col,
                      Err.empty() ? "malformed transaction directive "
                                    "(expected 'transaction <key "
                                    "columns> [x <N>]'): '" +
                                        std::string(Line) + "'"
                                  : Err);
        PendingTransacts.push_back({P.Line, P.Col, ColsText, Arity});
      } else if (consumeWord(Rest, "wire")) {
        if (!trim(Rest).empty())
          return fail(LineNo, colOf(trim(Rest)),
                      "the wire directive takes no arguments");
        Out.Options.WireDispatch = true;
        WireLine = LineNo;
        WireCol = colOf(Line);
      } else if (consumeWord(Rest, "concurrency")) {
        std::string Err;
        if (!parseConcurrency(LineNo, Raw.data(), Rest, Err))
          return fail(LineNo, colOf(trim(Rest)),
                      Err.empty()
                          ? "malformed concurrency directive (expected "
                            "'concurrency sharded <N> [on <column>]'): '" +
                                std::string(Line) + "'"
                          : Err);
      } else {
        return fail(LineNo, colOf(Line),
                    "unknown directive: '" + std::string(Line) + "'");
      }
    }

    if (Columns.empty())
      return fail(0, 0, "missing 'relation' declaration");

    // Build the spec.
    std::vector<std::pair<std::string, std::string>> FdPairs;
    for (const Pending &Fd : Fds) {
      size_t Arrow = Fd.Text.find("->");
      if (Arrow == std::string::npos)
        return fail(Fd.Line, Fd.Col, "fd is missing '->': " + Fd.Text);
      std::string_view V = Fd.Text;
      FdPairs.emplace_back(std::string(trim(V.substr(0, Arrow))),
                           std::string(trim(V.substr(Arrow + 2))));
    }
    Out.Spec = RelSpec::make(RelationName, Columns, FdPairs);

    // Parse the decomposition in the Fig. 3 language.
    if (DecompText.empty())
      return fail(0, 0, "missing 'let' bindings (no decomposition)");
    ParseResult Parsed = parseDecomposition(Out.Spec, DecompText);
    if (!Parsed.ok())
      return fail(FirstLetLine, FirstLetCol,
                  "decomposition: " + Parsed.Error);
    Out.Decomp = std::move(Parsed.Decomp);

    // Resolve the method set against the catalog.
    const Catalog &Cat = Out.Spec->catalog();
    for (const Pending &P : PendingQueries) {
      const std::string &Q = P.Text;
      // name (in, cols) -> (out, cols)
      size_t Open = Q.find('(');
      if (Open == std::string::npos)
        return fail(P.Line, P.Col, "query needs '(inputs) -> (outputs)'");
      std::string Name(trim(std::string_view(Q).substr(0, Open)));
      size_t Close = Q.find(')', Open);
      size_t Arrow = Q.find("->", Close);
      size_t Open2 = Q.find('(', Arrow == std::string::npos ? Q.size()
                                                            : Arrow);
      size_t Close2 = Q.find(')', Open2);
      if (Name.empty() || Close == std::string::npos ||
          Arrow == std::string::npos || Open2 == std::string::npos ||
          Close2 == std::string::npos)
        return fail(P.Line, P.Col, "malformed query directive");
      ColumnSet In, OutCols;
      if (!parseCols(Cat, Q.substr(Open + 1, Close - Open - 1), In))
        return fail(P.Line, P.Col, "unknown column in query inputs");
      if (!parseCols(Cat, Q.substr(Open2 + 1, Close2 - Open2 - 1), OutCols))
        return fail(P.Line, P.Col, "unknown column in query outputs");
      if (OutCols.empty())
        return fail(P.Line, P.Col, "query outputs are empty");
      Out.Options.Queries.push_back({Name, In, OutCols});
    }
    for (const Pending &P : PendingRemoves) {
      ColumnSet Key;
      if (!parseCols(Cat, P.Text, Key) || Key.empty())
        return fail(P.Line, P.Col, "malformed remove key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(P.Line, P.Col,
                    "remove pattern {" + P.Text + "} is not a key");
      Out.Options.RemoveKeys.push_back(Key);
    }
    for (const Pending &P : PendingUpdates) {
      ColumnSet Key;
      if (!parseCols(Cat, P.Text, Key) || Key.empty())
        return fail(P.Line, P.Col, "malformed update key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(P.Line, P.Col,
                    "update pattern {" + P.Text + "} is not a key");
      Out.Options.UpdateKeys.push_back(Key);
    }
    for (const Pending &P : PendingUpserts) {
      ColumnSet Key;
      if (!parseCols(Cat, P.Text, Key) || Key.empty())
        return fail(P.Line, P.Col, "malformed upsert key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(P.Line, P.Col,
                    "upsert pattern {" + P.Text + "} is not a key");
      Out.Options.UpsertKeys.push_back(Key);
    }
    for (const PendingTransact &P : PendingTransacts) {
      ColumnSet Key;
      if (!parseCols(Cat, P.Cols, Key) || Key.empty())
        return fail(P.Line, P.Col, "malformed transaction key");
      if (!Out.Spec->fds().isKey(Key, Out.Spec->columns()))
        return fail(P.Line, P.Col,
                    "transaction pattern {" + P.Cols + "} is not a key");
      Out.Options.Transactions.push_back({Key, P.Arity});
    }
    if (!ShardColumnName.empty()) {
      std::optional<ColumnId> Id = Cat.find(ShardColumnName);
      if (!Id)
        return fail(ConcurrencyLine, ConcurrencyCol,
                    "unknown shard column '" + ShardColumnName + "'");
      Out.Options.ConcurrentShardColumn = *Id;
    }
    if (Out.Options.WireDispatch && Out.Options.ConcurrentShards == 0)
      return fail(WireLine, WireCol,
                  "the wire directive requires a concurrency facade "
                  "(the dispatch table targets <class>_concurrent)");

    return finish();
  }

private:
  SpecFileResult fail(unsigned LineNo, unsigned Col,
                      const std::string &Msg) {
    SpecFileResult R;
    R.Error = Msg;
    R.Line = LineNo;
    R.Col = LineNo == 0 ? 0 : std::max(Col, 1u);
    return R;
  }

  SpecFileResult finish() {
    SpecFileResult R;
    R.File = std::move(Out);
    return R;
  }

  /// Splits an optional trailing "x <N>" arity suffix off a
  /// `transaction` payload. "owner, acct x 3" -> ("owner, acct", 3);
  /// no suffix leaves the default arity 2. A trailing integer without
  /// the `x` separator is malformed (returns false with a grammar
  /// hint via the caller); an out-of-range arity sets \p Err.
  static bool splitTransactArity(const std::string &Payload,
                                 std::string &Cols, unsigned &Arity,
                                 std::string &Err) {
    std::string_view T = trim(Payload);
    Cols = std::string(T);
    if (T.empty())
      return true; // "malformed transaction key" fires later.
    // Last whitespace-delimited token.
    size_t End = T.size();
    size_t P = End;
    while (P > 0 && !std::isspace(static_cast<unsigned char>(T[P - 1])))
      --P;
    std::string_view LastTok = T.substr(P, End - P);
    bool AllDigits = !LastTok.empty();
    for (char C : LastTok)
      AllDigits &= std::isdigit(static_cast<unsigned char>(C)) != 0;
    if (!AllDigits)
      return true; // no arity suffix
    // The token before the number must be exactly "x".
    size_t Q = P;
    while (Q > 0 && std::isspace(static_cast<unsigned char>(T[Q - 1])))
      --Q;
    size_t X = Q;
    while (X > 0 && !std::isspace(static_cast<unsigned char>(T[X - 1])))
      --X;
    std::string_view Sep = T.substr(X, Q - X);
    if (Sep != "x")
      return false;
    unsigned long V = 0;
    for (char C : LastTok) {
      V = std::min(V * 10 + static_cast<unsigned long>(C - '0'),
                   100000ul); // saturate; only the range check matters
    }
    if (V < 2 || V > MaxTransactArity) {
      Err = "transaction arity must be in [2, " +
            std::to_string(MaxTransactArity) +
            "] (one key tuple per side)";
      return false;
    }
    Arity = static_cast<unsigned>(V);
    Cols = std::string(trim(T.substr(0, X)));
    return true;
  }

  /// `sharded <N> [on <column>]` (the word `concurrency` is already
  /// consumed). The column is resolved against the catalog after the
  /// relation declaration is built. On failure \p Err is set when a
  /// more specific diagnostic than the grammar message applies.
  bool parseConcurrency(unsigned LineNo, const char *RawBegin,
                        std::string_view Rest, std::string &Err) {
    // The last directive wins outright: clear any earlier `on` clause
    // so a bare `concurrency sharded N` falls back to the default
    // shard column as documented.
    ShardColumnName.clear();
    if (!consumeWord(Rest, "sharded"))
      return false;
    std::string_view T = trim(Rest);
    size_t Len = 0;
    unsigned Shards = 0;
    while (Len != T.size() &&
           std::isdigit(static_cast<unsigned char>(T[Len]))) {
      // Saturate: only the [1, 4096] range check below matters.
      Shards = std::min(Shards * 10 + static_cast<unsigned>(T[Len] - '0'),
                        100000u);
      ++Len;
    }
    if (Len == 0)
      return false;
    if (Shards == 0 || Shards > 4096) {
      Err = "shard count must be in [1, 4096] (the facade holds a "
            "sub-instance and a padded lock per shard)";
      return false;
    }
    T = trim(T.substr(Len));
    if (!T.empty()) {
      if (!consumeWord(T, "on"))
        return false;
      T = trim(T);
      if (T.empty())
        return false;
      ShardColumnName = std::string(T);
      // Anchor the deferred "unknown shard column" error at the name.
      ConcurrencyCol = static_cast<unsigned>(T.data() - RawBegin) + 1;
    }
    Out.Options.ConcurrentShards = Shards;
    ConcurrencyLine = LineNo;
    return true;
  }

  bool parseRelation(std::string_view Decl) {
    size_t Open = Decl.find('(');
    size_t Close = Decl.rfind(')');
    if (Open == std::string_view::npos || Close == std::string_view::npos ||
        Close < Open)
      return false;
    RelationName = std::string(trim(Decl.substr(0, Open)));
    if (RelationName.empty())
      return false;
    return splitNames(Decl.substr(Open + 1, Close - Open - 1), Columns);
  }

  static bool parseCols(const Catalog &Cat, std::string_view Text,
                        ColumnSet &Out) {
    std::vector<std::string> Names;
    std::string_view T = trim(Text);
    if (T.empty()) {
      Out = ColumnSet();
      return true;
    }
    if (!splitNames(T, Names))
      return false;
    for (const std::string &N : Names) {
      std::optional<ColumnId> Id = Cat.find(N);
      if (!Id)
        return false;
      Out.insert(*Id);
    }
    return true;
  }

  std::string_view Text;
  std::string RelationName;
  std::vector<std::string> Columns;
  std::vector<Pending> Fds;
  std::vector<Pending> PendingQueries;
  std::vector<Pending> PendingRemoves;
  std::vector<Pending> PendingUpdates;
  std::vector<Pending> PendingUpserts;
  std::vector<PendingTransact> PendingTransacts;
  std::string ShardColumnName;
  unsigned FirstLetLine = 0;
  unsigned FirstLetCol = 0;
  unsigned ConcurrencyLine = 0;
  unsigned ConcurrencyCol = 1;
  unsigned WireLine = 0;
  unsigned WireCol = 1;
  SpecFile Out;
};

} // namespace

SpecFileResult relc::parseSpecFile(std::string_view Text) {
  return SpecFileParser(Text).run();
}
