//===- query/Planner.cpp - Cost-based query planner --------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Planner.h"

#include "query/Validity.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

using namespace relc;

namespace {

/// Candidate plan tree node (shared so Pareto fronts can reuse
/// subplans without copying).
struct CandNode {
  PlanKind Kind;
  PrimId Prim;
  std::shared_ptr<const CandNode> C0, C1;
  bool Left = true;
};

using CandRef = std::shared_ptr<const CandNode>;

/// A candidate with its judgment output B and estimated cost.
struct Candidate {
  ColumnSet B;
  double Cost;
  CandRef Tree;
};

class Planner {
public:
  Planner(const Decomposition &D, const CostParams &Params)
      : D(D), Params(Params), Fds(D.spec()->fds()) {
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      for (PrimId U : D.unitsOf(Id))
        UnitOwner[U] = Id;
  }

  /// Pareto front of valid plans for \p Prim under input columns \p A.
  const std::vector<Candidate> &plansFor(PrimId Prim, ColumnSet A) {
    auto Key = std::make_pair(Prim, A.mask());
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    // Insert a placeholder first: the decomposition is a DAG (no prim
    // recursion through itself), so re-entrancy cannot happen, but the
    // reference into the map must stay stable while we compute.
    std::vector<Candidate> Result = computePlans(Prim, A);
    return Memo.emplace(Key, std::move(Result)).first->second;
  }

  QueryPlan flatten(const Candidate &C, ColumnSet A) const {
    QueryPlan P;
    P.InputCols = A;
    P.OutputCols = C.B;
    P.EstimatedCost = C.Cost;
    P.Root = flattenNode(P, C.Tree.get());
    return P;
  }

private:
  static PlanStepId flattenNode(QueryPlan &P, const CandNode *N) {
    PlanStep S;
    S.Kind = N->Kind;
    S.Prim = N->Prim;
    S.Left = N->Left;
    if (N->C0)
      S.Child0 = flattenNode(P, N->C0.get());
    if (N->C1)
      S.Child1 = flattenNode(P, N->C1.get());
    P.Steps.push_back(S);
    return static_cast<PlanStepId>(P.Steps.size() - 1);
  }

  /// Keeps only the cheapest candidate per output column set.
  static void addCandidate(std::vector<Candidate> &Front, Candidate C) {
    for (Candidate &Existing : Front) {
      if (Existing.B == C.B) {
        if (C.Cost < Existing.Cost)
          Existing = std::move(C);
        return;
      }
    }
    Front.push_back(std::move(C));
  }

  std::vector<Candidate> computePlans(PrimId Prim, ColumnSet A) {
    std::vector<Candidate> Front;
    const PrimNode &P = D.prim(Prim);
    switch (P.Kind) {
    case PrimKind::Unit: {
      // (QUNIT), extended with the owning instance's bound valuation —
      // see the matching rule in Validity.cpp.
      auto N = std::make_shared<CandNode>();
      N->Kind = PlanKind::Unit;
      N->Prim = Prim;
      addCandidate(Front,
                   {P.Cols.unionWith(D.node(UnitOwner.at(Prim)).Bound), 1.0,
                    std::move(N)});
      break;
    }
    case PrimKind::Map: {
      PrimId TargetPrim = D.node(P.Target).Prim;
      double C = Params.fanout(P.Edge);
      // (QLOOKUP) if the key is fully bound.
      if (P.Cols.subsetOf(A)) {
        for (const Candidate &Sub : plansFor(TargetPrim, A)) {
          auto N = std::make_shared<CandNode>();
          N->Kind = PlanKind::Lookup;
          N->Prim = Prim;
          N->C0 = Sub.Tree;
          addCandidate(Front, {Sub.B.unionWith(P.Cols),
                               dsLookupCost(P.Ds, C) * Sub.Cost,
                               std::move(N)});
        }
      }
      // (QSCAN) always applies.
      for (const Candidate &Sub : plansFor(TargetPrim, A.unionWith(P.Cols))) {
        auto N = std::make_shared<CandNode>();
        N->Kind = PlanKind::Scan;
        N->Prim = Prim;
        N->C0 = Sub.Tree;
        addCandidate(Front,
                     {Sub.B.unionWith(P.Cols), C * Sub.Cost, std::move(N)});
      }
      break;
    }
    case PrimKind::Join: {
      for (bool LeftFirst : {true, false}) {
        PrimId First = LeftFirst ? P.Left : P.Right;
        PrimId Second = LeftFirst ? P.Right : P.Left;
        // (QLR).
        for (const Candidate &Sub : plansFor(First, A)) {
          auto N = std::make_shared<CandNode>();
          N->Kind = PlanKind::Lr;
          N->Prim = Prim;
          N->C0 = Sub.Tree;
          N->Left = LeftFirst;
          addCandidate(Front, {Sub.B, Sub.Cost, std::move(N)});
        }
        // (QJOIN) with its two FD premises.
        for (const Candidate &S1 : plansFor(First, A)) {
          for (const Candidate &S2 : plansFor(Second, A.unionWith(S1.B))) {
            if (!Fds.implies(A.unionWith(S1.B), S2.B))
              continue;
            if (!Fds.implies(A.unionWith(S2.B), S1.B))
              continue;
            auto N = std::make_shared<CandNode>();
            N->Kind = PlanKind::Join;
            N->Prim = Prim;
            N->C0 = S1.Tree;
            N->C1 = S2.Tree;
            N->Left = LeftFirst;
            addCandidate(Front, {S1.B.unionWith(S2.B), S1.Cost + S2.Cost,
                                 std::move(N)});
          }
        }
      }
      break;
    }
    }
    return Front;
  }

  const Decomposition &D;
  const CostParams &Params;
  const FuncDeps &Fds;
  std::map<std::pair<PrimId, uint64_t>, std::vector<Candidate>> Memo;
  std::map<PrimId, NodeId> UnitOwner;
};

} // namespace

std::optional<QueryPlan> relc::planQuery(const Decomposition &D,
                                         ColumnSet InputCols,
                                         ColumnSet OutputCols,
                                         const CostParams &Params) {
  Planner P(D, Params);
  const std::vector<Candidate> &Front =
      P.plansFor(D.node(D.root()).Prim, InputCols);
  const Candidate *Best = nullptr;
  for (const Candidate &C : Front) {
    // Execution filters pattern columns against scanned keys and units,
    // so every input column must be bound somewhere along the plan.
    if (!InputCols.subsetOf(C.B))
      continue;
    // The requested output must be available from the plan or pattern.
    if (!OutputCols.subsetOf(C.B.unionWith(InputCols)))
      continue;
    if (!Best || C.Cost < Best->Cost)
      Best = &C;
  }
  if (!Best)
    return std::nullopt;
  QueryPlan Plan = P.flatten(*Best, InputCols);
  assert(checkPlanValidity(D, Plan).ok() &&
         "planner produced an invalid plan");
  return Plan;
}

std::vector<QueryPlan> relc::enumeratePlans(const Decomposition &D,
                                            ColumnSet InputCols,
                                            const CostParams &Params) {
  Planner P(D, Params);
  std::vector<QueryPlan> Result;
  for (const Candidate &C : P.plansFor(D.node(D.root()).Prim, InputCols))
    Result.push_back(P.flatten(C, InputCols));
  std::sort(Result.begin(), Result.end(),
            [](const QueryPlan &A, const QueryPlan &B) {
              return A.EstimatedCost < B.EstimatedCost;
            });
  return Result;
}
