//===- query/CostModel.cpp - Query cost estimation --------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/CostModel.h"

#include <cassert>

using namespace relc;

namespace {
double costStep(const Decomposition &D, const QueryPlan &P, PlanStepId Id,
                const CostParams &Params) {
  const PlanStep &S = P.Steps[Id];
  switch (S.Kind) {
  case PlanKind::Unit:
    return 1.0;
  case PlanKind::Scan: {
    const PrimNode &Prim = D.prim(S.Prim);
    double C = Params.fanout(Prim.Edge);
    return C * costStep(D, P, S.Child0, Params);
  }
  case PlanKind::Lookup: {
    const PrimNode &Prim = D.prim(S.Prim);
    double C = Params.fanout(Prim.Edge);
    return dsLookupCost(Prim.Ds, C) * costStep(D, P, S.Child0, Params);
  }
  case PlanKind::Lr:
    return costStep(D, P, S.Child0, Params);
  case PlanKind::Join:
    return costStep(D, P, S.Child0, Params) +
           costStep(D, P, S.Child1, Params);
  }
  assert(false && "unknown PlanKind");
  return 0.0;
}
} // namespace

double relc::estimatePlanCost(const Decomposition &D, const QueryPlan &P,
                              const CostParams &Params) {
  assert(P.valid() && "cost of an invalid plan");
  return costStep(D, P, P.Root, Params);
}
