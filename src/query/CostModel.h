//===- query/CostModel.h - Query cost estimation ----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristic cost estimator E of Section 4.3. Every edge carries an
/// expected fanout c(v1,v2) — the number of entries per parent instance
/// — supplied by the user, by profiling, or defaulted. Each data
/// structure contributes mψ(n) lookup cost (ds/DsKind.h).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_COSTMODEL_H
#define RELC_QUERY_COSTMODEL_H

#include "query/Plan.h"

#include <unordered_map>

namespace relc {

/// Per-decomposition cost parameters: expected fanout per map edge.
class CostParams {
public:
  CostParams() = default;
  explicit CostParams(double DefaultFanout) : DefaultFanout(DefaultFanout) {}

  double fanout(EdgeId E) const {
    auto It = Fanout.find(E);
    return It == Fanout.end() ? DefaultFanout : It->second;
  }

  void setFanout(EdgeId E, double C) { Fanout[E] = C; }
  void setDefaultFanout(double C) { DefaultFanout = C; }
  double defaultFanout() const { return DefaultFanout; }

private:
  double DefaultFanout = 8.0;
  std::unordered_map<EdgeId, double> Fanout;
};

/// E(q): expected memory accesses of one execution of \p P over \p D
/// (Section 4.3; joins are costed optimistically as E(q1) + E(q2)).
double estimatePlanCost(const Decomposition &D, const QueryPlan &P,
                        const CostParams &Params);

} // namespace relc

#endif // RELC_QUERY_COSTMODEL_H
