//===- query/Validity.h - Query plan validity -------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validity judgment Γ̂,d̂,A ⊢∆ q,B of Section 4.2 (Fig. 8): a
/// sufficient condition for a plan to answer its query correctly
/// (Lemma 2). Validity checks that lookups have their key columns
/// bound, that join sides bind enough columns to match results
/// unambiguously (the FD premises of (QJOIN)), and computes the output
/// columns B.
///
/// On top of Fig. 8, answering `query r s C` with plan q additionally
/// requires A ⊆ B (every pattern column is either probed by a lookup or
/// checked against a scanned key/unit during execution — otherwise the
/// execution could not filter on it) and C ⊆ A ∪ B (the requested
/// output is available). checkPlanValidity enforces the judgment;
/// callers enforce the two containments for their A and C.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_VALIDITY_H
#define RELC_QUERY_VALIDITY_H

#include "query/Plan.h"

#include <optional>
#include <string>

namespace relc {

struct ValidityResult {
  /// B — the columns the plan binds in emitted tuples; empty optional
  /// if the plan is invalid.
  std::optional<ColumnSet> OutputCols;
  std::string Error;

  bool ok() const { return OutputCols.has_value(); }
};

/// Re-derives Fig. 8 for \p P with input columns \p P.InputCols against
/// \p D. The planner only emits valid plans; this is the independent
/// checker used by tests and by assertions on externally supplied plans.
ValidityResult checkPlanValidity(const Decomposition &D, const QueryPlan &P);

} // namespace relc

#endif // RELC_QUERY_VALIDITY_H
