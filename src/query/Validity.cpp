//===- query/Validity.cpp - Query plan validity ------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Validity.h"

#include <cassert>
#include <map>

using namespace relc;

namespace {

class ValidityChecker {
public:
  ValidityChecker(const Decomposition &D, const QueryPlan &P)
      : D(D), P(P), Fds(D.spec()->fds()) {
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      for (PrimId U : D.unitsOf(Id))
        UnitOwner[U] = Id;
  }

  ValidityResult run() {
    if (!P.valid())
      return {std::nullopt, "plan has no root"};
    return checkStep(P.Root, D.node(D.root()).Prim, P.InputCols);
  }

private:
  ValidityResult fail(const std::string &Msg) { return {std::nullopt, Msg}; }

  /// Γ̂, prim, A ⊢ step, B.
  ValidityResult checkStep(PlanStepId Id, PrimId Prim, ColumnSet A) {
    const PlanStep &S = P.Steps[Id];
    const PrimNode &Pr = D.prim(Prim);
    if (S.Prim != Prim)
      return fail("plan step is not aligned with the decomposition "
                  "primitive it traverses");
    switch (S.Kind) {
    case PlanKind::Unit: {
      // (QUNIT), extended: querying a unit binds its fields *and* the
      // owning instance's bound valuation. The paper's instances carry
      // that valuation in their variable subscripts (w_{ns:1,...},
      // Fig. 4); our NodeInstances store it, and the executor reads
      // and filters on it, so plans may count those columns as bound.
      // This is how a key probe answers, e.g., `state` through the
      // left path of Fig. 2 without touching the state lists.
      if (Pr.Kind != PrimKind::Unit)
        return fail("qunit applied to a non-unit primitive");
      return {Pr.Cols.unionWith(D.node(UnitOwner.at(Prim)).Bound), ""};
    }
    case PlanKind::Scan: {
      // (QSCAN): keys are bound both as sub-query input and as output.
      if (Pr.Kind != PrimKind::Map)
        return fail("qscan applied to a non-map primitive");
      ValidityResult Sub =
          checkStep(S.Child0, D.node(Pr.Target).Prim, A.unionWith(Pr.Cols));
      if (!Sub.ok())
        return Sub;
      return {Sub.OutputCols->unionWith(Pr.Cols), ""};
    }
    case PlanKind::Lookup: {
      // (QLOOKUP): all key columns must already be bound.
      if (Pr.Kind != PrimKind::Map)
        return fail("qlookup applied to a non-map primitive");
      if (!Pr.Cols.subsetOf(A))
        return fail("qlookup key columns " +
                    D.catalog().setToString(Pr.Cols) +
                    " are not all bound in the input " +
                    D.catalog().setToString(A));
      ValidityResult Sub = checkStep(S.Child0, D.node(Pr.Target).Prim, A);
      if (!Sub.ok())
        return Sub;
      return {Sub.OutputCols->unionWith(Pr.Cols), ""};
    }
    case PlanKind::Lr: {
      // (QLR): arbitrary query on one side, the other side ignored.
      if (Pr.Kind != PrimKind::Join)
        return fail("qlr applied to a non-join primitive");
      return checkStep(S.Child0, S.Left ? Pr.Left : Pr.Right, A);
    }
    case PlanKind::Join: {
      // (QJOIN): the first query feeds the second; both FD premises
      // ensure results match without ambiguity.
      if (Pr.Kind != PrimKind::Join)
        return fail("qjoin applied to a non-join primitive");
      PrimId First = S.Left ? Pr.Left : Pr.Right;
      PrimId Second = S.Left ? Pr.Right : Pr.Left;
      ValidityResult R1 = checkStep(S.Child0, First, A);
      if (!R1.ok())
        return R1;
      ColumnSet B1 = *R1.OutputCols;
      ValidityResult R2 = checkStep(S.Child1, Second, A.unionWith(B1));
      if (!R2.ok())
        return R2;
      ColumnSet B2 = *R2.OutputCols;
      if (!Fds.implies(A.unionWith(B1), B2))
        return fail("(QJOIN) first side output does not determine second "
                    "side output");
      if (!Fds.implies(A.unionWith(B2), B1))
        return fail("(QJOIN) second side output does not determine first "
                    "side output");
      return {B1.unionWith(B2), ""};
    }
    }
    assert(false && "unknown PlanKind");
    return fail("unknown plan kind");
  }

  const Decomposition &D;
  const QueryPlan &P;
  const FuncDeps &Fds;
  std::map<PrimId, NodeId> UnitOwner;
};

} // namespace

ValidityResult relc::checkPlanValidity(const Decomposition &D,
                                       const QueryPlan &P) {
  return ValidityChecker(D, P).run();
}
