//===- query/Planner.h - Cost-based query planner ---------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query planner of Section 4.3: enumerates the valid plans (Fig. 8)
/// for a query shape against a decomposition and returns the one with
/// the lowest estimated cost E. Enumeration is dynamic-programming
/// style: per (primitive, input-column-set) it keeps a Pareto front of
/// candidates — the cheapest plan for each achievable output column set.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_PLANNER_H
#define RELC_QUERY_PLANNER_H

#include "query/CostModel.h"
#include "query/Plan.h"

#include <optional>
#include <vector>

namespace relc {

/// Finds the cheapest valid plan answering `query r s C` where the
/// pattern s binds \p InputCols and \p OutputCols are requested.
/// Requires A ⊆ B (execution can filter on every pattern column) and
/// C ⊆ A ∪ B (requested columns are available); returns std::nullopt if
/// no plan satisfies them.
std::optional<QueryPlan> planQuery(const Decomposition &D,
                                   ColumnSet InputCols, ColumnSet OutputCols,
                                   const CostParams &Params);

/// All Pareto-optimal valid plans for an input column set, regardless
/// of output (for tests and the cost-model ablation bench). Sorted by
/// increasing estimated cost.
std::vector<QueryPlan> enumeratePlans(const Decomposition &D,
                                      ColumnSet InputCols,
                                      const CostParams &Params);

} // namespace relc

#endif // RELC_QUERY_PLANNER_H
