//===- query/Plan.cpp - Query plans -----------------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Plan.h"

#include <cassert>

using namespace relc;

namespace {
void renderStep(const QueryPlan &P, PlanStepId Id, std::string &Out) {
  const PlanStep &S = P.Steps[Id];
  switch (S.Kind) {
  case PlanKind::Unit:
    Out += "qunit";
    return;
  case PlanKind::Scan:
    Out += "qscan(";
    renderStep(P, S.Child0, Out);
    Out += ")";
    return;
  case PlanKind::Lookup:
    Out += "qlookup(";
    renderStep(P, S.Child0, Out);
    Out += ")";
    return;
  case PlanKind::Lr:
    Out += "qlr(";
    renderStep(P, S.Child0, Out);
    Out += S.Left ? ", left)" : ", right)";
    return;
  case PlanKind::Join:
    Out += "qjoin(";
    renderStep(P, S.Child0, Out);
    Out += ", ";
    renderStep(P, S.Child1, Out);
    Out += S.Left ? ", left)" : ", right)";
    return;
  }
  assert(false && "unknown PlanKind");
}
} // namespace

std::string QueryPlan::str() const {
  if (!valid())
    return "<no plan>";
  std::string Out;
  renderStep(*this, Root, Out);
  return Out;
}
