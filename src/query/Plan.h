//===- query/Plan.h - Query plans -------------------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query plans per Section 4.1 (Fig. 7): a tree of operators
/// superimposed on a decomposition, prescribing which nodes and edges
/// to visit and how (scan vs lookup, join order, or one side only).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_PLAN_H
#define RELC_QUERY_PLAN_H

#include "decomp/Decomposition.h"

#include <string>
#include <vector>

namespace relc {

enum class PlanKind {
  Unit,   ///< qunit — emit the unit tuple if it matches.
  Scan,   ///< qscan(q) — iterate a map's entries.
  Lookup, ///< qlookup(q) — single-key probe of a map.
  Lr,     ///< qlr(q, side) — query one side of a join, ignore the other.
  Join,   ///< qjoin(q1, q2, side) — nested execution across both sides.
};

using PlanStepId = unsigned;

/// One operator of a plan tree. Prim ties the step to the primitive it
/// traverses: the unit for Unit, the map for Scan/Lookup, the join for
/// Lr/Join.
struct PlanStep {
  PlanKind Kind;
  PrimId Prim = InvalidIndex;
  PlanStepId Child0 = InvalidIndex; ///< Scan/Lookup/Lr subplan; Join q1.
  PlanStepId Child1 = InvalidIndex; ///< Join q2.
  bool Left = true; ///< Lr: which side; Join: which side runs first.
};

/// A complete plan for one (input columns, output columns) query shape
/// against one decomposition. Steps are stored in a pool; Root is the
/// index of the top step.
struct QueryPlan {
  std::vector<PlanStep> Steps;
  PlanStepId Root = InvalidIndex;
  ColumnSet InputCols;  ///< A — columns bound in the input pattern.
  ColumnSet OutputCols; ///< B — columns bound in emitted tuples.
  double EstimatedCost = 0.0;

  bool valid() const { return Root != InvalidIndex; }

  /// Renders the paper's notation, e.g.
  /// "qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left)".
  std::string str() const;
};

} // namespace relc

#endif // RELC_QUERY_PLAN_H
