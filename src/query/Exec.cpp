//===- query/Exec.cpp - Query plan execution ---------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Exec.h"

#include <cassert>

using namespace relc;

namespace {

/// Recursive interpreter in continuation-passing style: each step
/// delivers result bindings to a continuation, so a join simply chains
/// its second query as the continuation of its first — nested
/// iteration, no intermediate storage.
///
/// The binding tuple accumulates the input pattern plus every column
/// bound along the plan; scans and units filter against it (this is
/// what makes plans with A ⊆ B faithful to `query r s C`, cf. Lemma 2).
class Executor {
public:
  Executor(const QueryPlan &Plan, const Decomposition &D)
      : Plan(Plan), D(D) {}

  using Sink = function_ref<bool(const Tuple &)>;

  /// \returns false if the consumer stopped the execution.
  bool run(PlanStepId Id, const NodeInstance *Inst, const Tuple &Binding,
           Sink Cont) const {
    const PlanStep &S = Plan.Steps[Id];
    switch (S.Kind) {
    case PlanKind::Unit: {
      // (QUNIT), extended: the instance's bound valuation joins the
      // binding alongside the unit fields (see Validity.cpp). Both are
      // filtered against the pattern/binding first.
      const Tuple &Bound = Inst->bound();
      if (!Bound.matches(Binding))
        return true;
      const Tuple &U = Inst->unitValues(S.Prim);
      if (!U.matches(Binding))
        return true;
      return Cont(Binding.merge(Bound).merge(U));
    }
    case PlanKind::Scan: {
      const MapEdge &Edge = D.edge(D.prim(S.Prim).Edge);
      const EdgeMap &Map = Inst->edgeMap(Edge.OrdinalInFrom);
      const NodeInstance *Parent = Inst;
      (void)Parent;
      return Map.forEach([&](const Tuple &Key, NodeInstance *Child) {
        if (!Key.matches(Binding))
          return true;
        return run(S.Child0, Child, Binding.merge(Key), Cont);
      });
    }
    case PlanKind::Lookup: {
      const MapEdge &Edge = D.edge(D.prim(S.Prim).Edge);
      const EdgeMap &Map = Inst->edgeMap(Edge.OrdinalInFrom);
      // (QLOOKUP) validity guarantees the key columns are bound.
      Tuple Key = Binding.project(Edge.KeyCols);
      NodeInstance *Child = Map.lookup(Key);
      if (!Child)
        return true;
      return run(S.Child0, Child, Binding, Cont);
    }
    case PlanKind::Lr:
      return run(S.Child0, Inst, Binding, Cont);
    case PlanKind::Join:
      // Nested execution: the second query runs once per tuple the
      // first produces, with the enriched binding.
      return run(S.Child0, Inst, Binding, [&](const Tuple &B1) {
        return run(S.Child1, Inst, B1, Cont);
      });
    }
    assert(false && "unknown PlanKind");
    return true;
  }

private:
  const QueryPlan &Plan;
  const Decomposition &D;
};

} // namespace

void relc::execPlan(const QueryPlan &Plan, const InstanceGraph &G,
                    const Tuple &Pattern,
                    function_ref<bool(const Tuple &)> Emit) {
  assert(Plan.valid() && "executing an invalid plan");
  assert(Pattern.columns() == Plan.InputCols &&
         "pattern columns must match the plan's input columns");
  Executor E(Plan, G.decomp());
  E.run(Plan.Root, G.root(), Pattern, Emit);
}
