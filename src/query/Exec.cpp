//===- query/Exec.cpp - Query plan execution ---------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Exec.h"

#include <cassert>

using namespace relc;

namespace {

/// Recursive interpreter in continuation-passing style: each step
/// delivers result bindings to a continuation, so a join simply chains
/// its second query as the continuation of its first — nested
/// iteration, no intermediate storage.
///
/// One mutable BindingFrame carries the input pattern plus every
/// column bound along the plan; scans and units filter against it
/// (this is what makes plans with A ⊆ B faithful to `query r s C`,
/// cf. Lemma 2). Steps bracket their bindings with mask save/restore
/// instead of merging tuples, and lookups probe containers with
/// borrowed views of the frame — the whole traversal allocates
/// nothing.
class Executor {
public:
  Executor(const QueryPlan &Plan, const Decomposition &D, BindingFrame &Frame)
      : Plan(Plan), D(D), Frame(Frame) {}

  using Sink = function_ref<bool(const BindingFrame &)>;

  /// \returns false if the consumer stopped the execution.
  bool run(PlanStepId Id, const NodeInstance *Inst, Sink Cont) const {
    const PlanStep &S = Plan.Steps[Id];
    switch (S.Kind) {
    case PlanKind::Unit: {
      // (QUNIT), extended: the instance's bound valuation joins the
      // binding alongside the unit fields (see Validity.cpp). Both are
      // filtered against the pattern/binding as they bind.
      ColumnSet Saved = Frame.save();
      if (!Frame.matchAndBind(Inst->bound()) ||
          !Frame.matchAndBind(Inst->unitValues(S.Prim))) {
        Frame.restore(Saved);
        return true;
      }
      bool KeepGoing = Cont(Frame);
      Frame.restore(Saved);
      return KeepGoing;
    }
    case PlanKind::Scan: {
      const MapEdge &Edge = D.edge(D.prim(S.Prim).Edge);
      const EdgeMap &Map = Inst->edgeMap(Edge.OrdinalInFrom);
      return Map.forEach([&](const Tuple &Key, NodeInstance *Child) {
        ColumnSet Saved = Frame.save();
        if (!Frame.matchAndBind(Key)) {
          Frame.restore(Saved);
          return true;
        }
        bool KeepGoing = run(S.Child0, Child, Cont);
        Frame.restore(Saved);
        return KeepGoing;
      });
    }
    case PlanKind::Lookup: {
      const MapEdge &Edge = D.edge(D.prim(S.Prim).Edge);
      const EdgeMap &Map = Inst->edgeMap(Edge.OrdinalInFrom);
      // (QLOOKUP) validity guarantees the key columns are bound; probe
      // with a borrowed view of the frame's registers.
      NodeInstance *Child = Map.lookup(Frame.view(Edge.KeyCols));
      if (!Child)
        return true;
      return run(S.Child0, Child, Cont);
    }
    case PlanKind::Lr:
      return run(S.Child0, Inst, Cont);
    case PlanKind::Join:
      // Nested execution: the second query runs once per binding the
      // first produces; the shared frame still holds the first side's
      // bindings when the second side runs.
      return run(S.Child0, Inst, [&](const BindingFrame &) {
        return run(S.Child1, Inst, Cont);
      });
    }
    assert(false && "unknown PlanKind");
    return true;
  }

private:
  const QueryPlan &Plan;
  const Decomposition &D;
  BindingFrame &Frame;
};

} // namespace

void relc::execPlan(const QueryPlan &Plan, const InstanceGraph &G,
                    const Tuple &Pattern, BindingFrame &Frame,
                    function_ref<bool(const BindingFrame &)> Emit) {
  assert(Plan.valid() && "executing an invalid plan");
  assert(Pattern.columns() == Plan.InputCols &&
         "pattern columns must match the plan's input columns");
  const Decomposition &D = G.decomp();
  Frame.reset(D.spec()->catalog().size());
  Frame.bind(Pattern);
  Executor E(Plan, D, Frame);
  E.run(Plan.Root, G.root(), Emit);
}

void relc::execPlan(const QueryPlan &Plan, const InstanceGraph &G,
                    const Tuple &Pattern,
                    function_ref<bool(const Tuple &)> Emit) {
  BindingFrame Frame;
  execPlan(Plan, G, Pattern, Frame, [&](const BindingFrame &F) {
    return Emit(F.toTuple(F.bound()));
  });
}
