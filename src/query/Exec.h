//===- query/Exec.h - Query plan execution ----------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dqexec (Section 4.1): evaluates a query plan over a decomposition
/// instance, producing the tuples represented by the instance that
/// match the input pattern. Execution is constant-space — no
/// intermediate collections; results stream through a callback, with
/// nested joins realized as nested iteration. (The RELC code generator
/// emits a specialized version of this interpreter per plan.)
///
/// The interpreter threads one mutable BindingFrame through the plan:
/// each step binds columns into the frame's registers and restores the
/// frame's bound-mask when it backtracks, so no per-step tuple is ever
/// materialized. Results are delivered as `const BindingFrame &`; the
/// Tuple-emitting overload materializes one tuple per result at the
/// emit boundary only.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_EXEC_H
#define RELC_QUERY_EXEC_H

#include "instance/InstanceGraph.h"
#include "query/Plan.h"
#include "rel/BindingFrame.h"
#include "support/FunctionRef.h"

namespace relc {

/// Evaluates \p Plan over \p G with input pattern \p Pattern (whose
/// columns must equal Plan.InputCols), threading \p Frame as the
/// binding register file. \p Frame is reset to the catalog's width and
/// seeded with the pattern; at each emission its bound columns are
/// Plan.OutputCols ∪ Plan.InputCols (plus incidentally-bound columns
/// along the plan's path). \p Emit returns false to stop early. The
/// frame reference passed to \p Emit is only valid for the duration of
/// the call — callers materialize what they keep.
///
/// Results are not deduplicated (constant-space execution cannot be —
/// Section 4.1); callers project and deduplicate as needed.
void execPlan(const QueryPlan &Plan, const InstanceGraph &G,
              const Tuple &Pattern, BindingFrame &Frame,
              function_ref<bool(const BindingFrame &)> Emit);

/// As above with a stack-local frame, materializing each result as a
/// Tuple over the frame's bound columns.
void execPlan(const QueryPlan &Plan, const InstanceGraph &G,
              const Tuple &Pattern, function_ref<bool(const Tuple &)> Emit);

} // namespace relc

#endif // RELC_QUERY_EXEC_H
