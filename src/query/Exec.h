//===- query/Exec.h - Query plan execution ----------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dqexec (Section 4.1): evaluates a query plan over a decomposition
/// instance, producing the tuples represented by the instance that
/// match the input pattern. Execution is constant-space — no
/// intermediate collections; results stream through a callback, with
/// nested joins realized as nested iteration. (The RELC code generator
/// emits a specialized version of this interpreter per plan.)
///
//===----------------------------------------------------------------------===//

#ifndef RELC_QUERY_EXEC_H
#define RELC_QUERY_EXEC_H

#include "instance/InstanceGraph.h"
#include "query/Plan.h"
#include "support/FunctionRef.h"

namespace relc {

/// Evaluates \p Plan over \p G with input pattern \p Pattern (whose
/// columns must equal Plan.InputCols). \p Emit is called once per
/// result with a tuple binding Plan.OutputCols ∪ Plan.InputCols;
/// returning false stops execution early.
///
/// Results are not deduplicated (constant-space execution cannot be —
/// Section 4.1); callers project and deduplicate as needed.
void execPlan(const QueryPlan &Plan, const InstanceGraph &G,
              const Tuple &Pattern, function_ref<bool(const Tuple &)> Emit);

} // namespace relc

#endif // RELC_QUERY_EXEC_H
