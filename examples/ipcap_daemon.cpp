//===- examples/ipcap_daemon.cpp - Network flow accounting -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The IpCap scenario of Section 6.2: a network accounting daemon
// counts bytes per (local, remote) flow, then periodically flushes the
// accumulated statistics to a log. The flow table is a synthesized
// relation flows(local, remote, in, out, packets); the decomposition —
// btree(local) → hash(remote) → counters — is Fig. 13's best.
//
// Build & run:  ./build/examples/ipcap_daemon [num-packets]
//
//===----------------------------------------------------------------------===//

#include "systems/IpcapRelational.h"
#include "workloads/PacketTrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace relc;

int main(int argc, char **argv) {
  PacketTraceOptions Opts;
  Opts.NumPackets = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                             : 300000; // the paper's 3×10^5
  std::vector<Packet> Trace = generatePacketTrace(Opts);
  std::printf("replaying %zu packets (%u local hosts, %u remote hosts)\n",
              Trace.size(), Opts.NumLocalHosts, Opts.NumRemoteHosts);

  IpcapRelational Daemon;
  size_t FlushedFlows = 0;
  int64_t LoggedBytes = 0;

  auto T0 = std::chrono::steady_clock::now();
  size_t N = 0;
  for (const Packet &P : Trace) {
    Daemon.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    // Every ~50k packets the daemon writes the accumulated flows out
    // and starts over (the paper's periodic log pass).
    if (++N % 50000 == 0) {
      for (const FlowRecord &R : Daemon.flush()) {
        ++FlushedFlows;
        LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
      }
    }
  }
  for (const FlowRecord &R : Daemon.flush()) {
    ++FlushedFlows;
    LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
  }
  auto T1 = std::chrono::steady_clock::now();

  std::printf("logged %zu flow records, %lld bytes total, in %.3fs\n",
              FlushedFlows, static_cast<long long>(LoggedBytes),
              std::chrono::duration<double>(T1 - T0).count());

  // A point probe through the same relation.
  Daemon.accountPacket(1, 2, 100, /*Outgoing=*/true);
  Daemon.accountPacket(1, 2, 40, /*Outgoing=*/false);
  if (const FlowStats *S = Daemon.flowOf(1, 2))
    std::printf("flow (1, 2): in=%lld out=%lld packets=%lld\n",
                static_cast<long long>(S->BytesIn),
                static_cast<long long>(S->BytesOut),
                static_cast<long long>(S->Packets));
  return 0;
}
