//===- examples/ipcap_daemon.cpp - Network flow accounting -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The IpCap scenario of Section 6.2: a network accounting daemon
// counts bytes per (local, remote) flow, then periodically flushes the
// accumulated statistics to a log. The flow table is a synthesized
// relation flows(local, remote, in, out, packets); the decomposition —
// btree(local) → hash(remote) → counters — is Fig. 13's best.
//
// Build & run:  ./build/examples/ipcap_daemon [num-packets]
//               ./build/examples/ipcap_daemon [num-packets] --threads 4
//
// With --threads N the flow table is one sharded ConcurrentRelation
// and the packet stream is split round-robin across the workers —
// packet i goes to thread i mod N, regardless of which flow it
// belongs to. Per-packet accounting is one atomic upsert: the key
// (local, remote) binds the shard column, so the read-modify-write
// cycle linearizes under a single shard writer lock and two workers
// racing on the same flow can never lose an increment. (Earlier
// versions steered flows by LocalHost ≡ tid (mod N) so each worker
// owned its keys outright — upsert makes that external ownership
// partitioning unnecessary.) Both modes end by flushing every flow
// and printing totals, which must agree between a sequential and a
// threaded run over the same trace.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"
#include "systems/IpcapRelational.h"
#include "workloads/PacketTrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace relc;

namespace {

int runSequential(const std::vector<Packet> &Trace) {
  IpcapRelational Daemon;
  size_t FlushedFlows = 0;
  int64_t LoggedBytes = 0;

  auto T0 = std::chrono::steady_clock::now();
  size_t N = 0;
  for (const Packet &P : Trace) {
    Daemon.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    // Every ~50k packets the daemon writes the accumulated flows out
    // and starts over (the paper's periodic log pass).
    if (++N % 50000 == 0) {
      for (const FlowRecord &R : Daemon.flush()) {
        ++FlushedFlows;
        LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
      }
    }
  }
  for (const FlowRecord &R : Daemon.flush()) {
    ++FlushedFlows;
    LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
  }
  auto T1 = std::chrono::steady_clock::now();

  std::printf("logged %zu flow records, %lld bytes total, in %.3fs\n",
              FlushedFlows, static_cast<long long>(LoggedBytes),
              std::chrono::duration<double>(T1 - T0).count());

  // A point probe through the same relation.
  Daemon.accountPacket(1, 2, 100, /*Outgoing=*/true);
  Daemon.accountPacket(1, 2, 40, /*Outgoing=*/false);
  if (const FlowStats *S = Daemon.flowOf(1, 2))
    std::printf("flow (1, 2): in=%lld out=%lld packets=%lld\n",
                static_cast<long long>(S->BytesIn),
                static_cast<long long>(S->BytesOut),
                static_cast<long long>(S->Packets));
  return 0;
}

int runThreaded(const std::vector<Packet> &Trace, unsigned NumThreads) {
  RelSpecRef Spec = IpcapRelational::makeSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4 * NumThreads;
  ConcurrentRelation Flows(IpcapRelational::makeDefaultDecomposition(Spec),
                           Opts);
  const Catalog &Cat = Spec->catalog();
  ColumnId ColLocal = Cat.get("local"), ColRemote = Cat.get("remote");
  ColumnId ColIn = Cat.get("bytes_in"), ColOut = Cat.get("bytes_out");
  ColumnId ColPackets = Cat.get("packets");

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned Tid = 0; Tid != NumThreads; ++Tid)
    Workers.emplace_back([&, Tid] {
      for (size_t I = Tid; I < Trace.size(); I += NumThreads) {
        const Packet &P = Trace[I];
        Tuple Key;
        Key.set(ColLocal, Value::ofInt(P.LocalHost));
        Key.set(ColRemote, Value::ofInt(P.RemoteHost));
        // One atomic read-modify-write under the flow's shard writer
        // lock: the key binds the shard column (local), so this is a
        // routed single-shard operation and concurrent workers hitting
        // the same flow linearize instead of losing increments.
        Flows.upsert(Key, [&](const BindingFrame *Cur, Tuple &Values) {
          int64_t In = Cur ? Cur->get(ColIn).asInt() : 0;
          int64_t Out = Cur ? Cur->get(ColOut).asInt() : 0;
          int64_t Pkts = Cur ? Cur->get(ColPackets).asInt() : 0;
          Values.set(ColIn, Value::ofInt(In + (P.Outgoing ? 0 : P.Bytes)));
          Values.set(ColOut, Value::ofInt(Out + (P.Outgoing ? P.Bytes : 0)));
          Values.set(ColPackets, Value::ofInt(Pkts + 1));
        });
      }
    });
  for (std::thread &W : Workers)
    W.join();

  // The final log pass: a parallel fan-out scan, one worker per shard
  // feeding the bounded merge queue.
  size_t FlushedFlows = 0;
  int64_t LoggedBytes = 0;
  Flows.scanParallel(Tuple(), Spec->columns(), [&](const Tuple &T) {
    ++FlushedFlows;
    LoggedBytes += T.get(ColIn).asInt() + T.get(ColOut).asInt();
    return true;
  });
  auto T1 = std::chrono::steady_clock::now();

  std::printf(
      "logged %zu flow records, %lld bytes total, in %.3fs (%u threads, "
      "%u shards)\n",
      FlushedFlows, static_cast<long long>(LoggedBytes),
      std::chrono::duration<double>(T1 - T0).count(), NumThreads,
      Flows.numShards());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  PacketTraceOptions Opts;
  Opts.NumPackets = 300000; // the paper's 3×10^5
  unsigned NumThreads = 0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      int N = std::atoi(argv[++I]);
      if (N <= 0) {
        std::fprintf(stderr, "error: --threads must be positive\n");
        return 2;
      }
      NumThreads = static_cast<unsigned>(N);
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "usage: %s [num-packets] [--threads N]\n",
                   argv[0]);
      return 2;
    } else {
      Opts.NumPackets = static_cast<size_t>(std::atoll(argv[I]));
    }
  }

  std::vector<Packet> Trace = generatePacketTrace(Opts);
  std::printf("replaying %zu packets (%u local hosts, %u remote hosts)\n",
              Trace.size(), Opts.NumLocalHosts, Opts.NumRemoteHosts);

  if (NumThreads > 0)
    return runThreaded(Trace, NumThreads);
  return runSequential(Trace);
}
