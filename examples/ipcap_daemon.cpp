//===- examples/ipcap_daemon.cpp - Network flow accounting -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The IpCap scenario of Section 6.2: a network accounting daemon
// counts bytes per (local, remote) flow, then periodically flushes the
// accumulated statistics to a log. The flow table is a synthesized
// relation flows(local, remote, in, out, packets); the decomposition —
// btree(local) → hash(remote) → counters — is Fig. 13's best.
//
// Build & run:  ./build/examples/ipcap_daemon [num-packets]
//               ./build/examples/ipcap_daemon [num-packets] --threads 4
//
// With --threads N the daemon runs the multi-queue design real
// capture stacks use (RSS-style flow steering): the flow table is one
// sharded ConcurrentRelation and each worker thread owns the flows of
// the local hosts with LocalHost ≡ tid (mod N), so per-flow
// read-modify-write needs no extra locking while the shared relation
// absorbs concurrent writers on its shard locks. Both modes end by
// flushing every flow and printing totals, which must agree between a
// sequential and a threaded run over the same trace.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"
#include "systems/IpcapRelational.h"
#include "workloads/PacketTrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace relc;

namespace {

int runSequential(const std::vector<Packet> &Trace) {
  IpcapRelational Daemon;
  size_t FlushedFlows = 0;
  int64_t LoggedBytes = 0;

  auto T0 = std::chrono::steady_clock::now();
  size_t N = 0;
  for (const Packet &P : Trace) {
    Daemon.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    // Every ~50k packets the daemon writes the accumulated flows out
    // and starts over (the paper's periodic log pass).
    if (++N % 50000 == 0) {
      for (const FlowRecord &R : Daemon.flush()) {
        ++FlushedFlows;
        LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
      }
    }
  }
  for (const FlowRecord &R : Daemon.flush()) {
    ++FlushedFlows;
    LoggedBytes += R.Stats.BytesIn + R.Stats.BytesOut;
  }
  auto T1 = std::chrono::steady_clock::now();

  std::printf("logged %zu flow records, %lld bytes total, in %.3fs\n",
              FlushedFlows, static_cast<long long>(LoggedBytes),
              std::chrono::duration<double>(T1 - T0).count());

  // A point probe through the same relation.
  Daemon.accountPacket(1, 2, 100, /*Outgoing=*/true);
  Daemon.accountPacket(1, 2, 40, /*Outgoing=*/false);
  if (const FlowStats *S = Daemon.flowOf(1, 2))
    std::printf("flow (1, 2): in=%lld out=%lld packets=%lld\n",
                static_cast<long long>(S->BytesIn),
                static_cast<long long>(S->BytesOut),
                static_cast<long long>(S->Packets));
  return 0;
}

int runThreaded(const std::vector<Packet> &Trace, unsigned NumThreads) {
  RelSpecRef Spec = IpcapRelational::makeSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4 * NumThreads;
  ConcurrentRelation Flows(IpcapRelational::makeDefaultDecomposition(Spec),
                           Opts);
  const Catalog &Cat = Spec->catalog();
  ColumnId ColLocal = Cat.get("local"), ColRemote = Cat.get("remote");
  ColumnId ColIn = Cat.get("bytes_in"), ColOut = Cat.get("bytes_out");
  ColumnId ColPackets = Cat.get("packets");
  ColumnSet Counters = Cat.parseSet("bytes_in, bytes_out, packets");

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned Tid = 0; Tid != NumThreads; ++Tid)
    Workers.emplace_back([&, Tid] {
      for (const Packet &P : Trace) {
        // Flow steering: this worker owns LocalHost ≡ Tid (mod N).
        if (static_cast<uint64_t>(P.LocalHost) % NumThreads != Tid)
          continue;
        Tuple Key;
        Key.set(ColLocal, Value::ofInt(P.LocalHost));
        Key.set(ColRemote, Value::ofInt(P.RemoteHost));
        int64_t In = 0, Out = 0, Pkts = 0;
        bool Found = false;
        // Routed read (the key binds the shard column, local).
        Flows.scanFrames(Key, Counters, [&](const BindingFrame &F) {
          In = F.get(ColIn).asInt();
          Out = F.get(ColOut).asInt();
          Pkts = F.get(ColPackets).asInt();
          Found = true;
          return false;
        });
        if (!Found) {
          Tuple T = Key;
          T.set(ColIn, Value::ofInt(P.Outgoing ? 0 : P.Bytes));
          T.set(ColOut, Value::ofInt(P.Outgoing ? P.Bytes : 0));
          T.set(ColPackets, Value::ofInt(1));
          Flows.insert(T);
          continue;
        }
        Tuple Changes;
        Changes.set(ColIn, Value::ofInt(In + (P.Outgoing ? 0 : P.Bytes)));
        Changes.set(ColOut, Value::ofInt(Out + (P.Outgoing ? P.Bytes : 0)));
        Changes.set(ColPackets, Value::ofInt(Pkts + 1));
        Flows.update(Key, Changes);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  // The final log pass: one fan-out scan over every shard.
  size_t FlushedFlows = 0;
  int64_t LoggedBytes = 0;
  Flows.scan(Tuple(), Spec->columns(), [&](const Tuple &T) {
    ++FlushedFlows;
    LoggedBytes += T.get(ColIn).asInt() + T.get(ColOut).asInt();
    return true;
  });
  auto T1 = std::chrono::steady_clock::now();

  std::printf(
      "logged %zu flow records, %lld bytes total, in %.3fs (%u threads, "
      "%u shards)\n",
      FlushedFlows, static_cast<long long>(LoggedBytes),
      std::chrono::duration<double>(T1 - T0).count(), NumThreads,
      Flows.numShards());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  PacketTraceOptions Opts;
  Opts.NumPackets = 300000; // the paper's 3×10^5
  unsigned NumThreads = 0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      int N = std::atoi(argv[++I]);
      if (N <= 0) {
        std::fprintf(stderr, "error: --threads must be positive\n");
        return 2;
      }
      NumThreads = static_cast<unsigned>(N);
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "usage: %s [num-packets] [--threads N]\n",
                   argv[0]);
      return 2;
    } else {
      Opts.NumPackets = static_cast<size_t>(std::atoll(argv[I]));
    }
  }

  std::vector<Packet> Trace = generatePacketTrace(Opts);
  std::printf("replaying %zu packets (%u local hosts, %u remote hosts)\n",
              Trace.size(), Opts.NumLocalHosts, Opts.NumRemoteHosts);

  if (NumThreads > 0)
    return runThreaded(Trace, NumThreads);
  return runSequential(Trace);
}
