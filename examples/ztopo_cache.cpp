//===- examples/ztopo_cache.cpp - Map-tile cache -----------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The ZTopo scenario of Section 6.2: a topographic map viewer keeps a
// cache of image tiles with a state (loading / in memory / on disk), a
// size, and an LRU stamp. The original code kept a hash table plus
// per-state linked lists in sync with hand-written assertions; here the
// tile cache is one synthesized relation and the invariant holds by
// construction.
//
// Build & run:  ./build/examples/ztopo_cache [num-requests]
//
//===----------------------------------------------------------------------===//

#include "systems/ZtopoRelational.h"
#include "workloads/TileTrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace relc;

int main(int argc, char **argv) {
  TileTraceOptions Opts;
  Opts.NumRequests =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200000;
  std::vector<TileRequest> Trace = generateTileTrace(Opts);
  std::printf("replaying %zu tile requests (pan probability %.2f)\n",
              Trace.size(), Opts.PanProbability);

  constexpr int64_t MemoryBudget = 8 * 1024 * 1024;
  ZtopoRelational Cache;
  size_t Hits = 0, Misses = 0, Evictions = 0;

  auto T0 = std::chrono::steady_clock::now();
  for (const TileRequest &Q : Trace) {
    TileState State;
    if (Cache.touchTile(Q.TileId, State)) {
      ++Hits;
    } else {
      ++Misses;
      // "Fetch over HTTP", then insert as in-memory.
      Cache.addTile(Q.TileId, TileState::InMemory, Q.Size);
    }
    if (Cache.bytesIn(TileState::InMemory) > MemoryBudget)
      Evictions +=
          Cache.evictToBudget(TileState::InMemory, MemoryBudget).size();
  }
  auto T1 = std::chrono::steady_clock::now();

  std::printf("hits %zu (%.1f%%), misses %zu, evictions %zu, "
              "resident %lld bytes in %zu tiles, %.3fs\n",
              Hits, 100.0 * Hits / Trace.size(), Misses, Evictions,
              static_cast<long long>(Cache.bytesIn(TileState::InMemory)),
              Cache.numTiles(),
              std::chrono::duration<double>(T1 - T0).count());

  // The invariant ZTopo originally asserted by hand.
  WfResult Wf = Cache.relation().checkWellFormed();
  std::printf("cache representation well-formed: %s\n",
              Wf.Ok ? "yes" : Wf.Error.c_str());
  return Wf.Ok ? 0 : 1;
}
