//===- examples/graph_dfs.cpp - Section 6.1's graph client -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The directed-graph benchmark client from Section 6.1: edges are a
// relation edges(src, dst, weight) with src,dst → weight, nodes a
// relation nodes(id). The same DFS code runs unchanged over three
// different decompositions (Fig. 12's 1, 5 and 9) with very different
// performance characteristics — that is the paper's point.
//
// Build & run:  ./build/examples/graph_dfs [grid-width]
//
//===----------------------------------------------------------------------===//

#include "systems/GraphRelational.h"
#include "workloads/RoadNetwork.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace relc;

namespace {

double seconds(std::chrono::steady_clock::duration D) {
  return std::chrono::duration<double>(D).count();
}

void runVariant(const char *Name, Decomposition D,
                const std::vector<RoadEdge> &Edges) {
  GraphRelational G(std::move(D));

  auto T0 = std::chrono::steady_clock::now();
  for (const RoadEdge &E : Edges)
    G.addEdge(E.Src, E.Dst, E.Weight);
  auto T1 = std::chrono::steady_clock::now();
  size_t Fwd = G.depthFirstSearch(0, /*Backward=*/false);
  auto T2 = std::chrono::steady_clock::now();
  size_t Bwd = G.depthFirstSearch(0, /*Backward=*/true);
  auto T3 = std::chrono::steady_clock::now();
  for (const RoadEdge &E : Edges)
    G.removeEdge(E.Src, E.Dst);
  auto T4 = std::chrono::steady_clock::now();

  std::printf("%-10s construct %.3fs  F-dfs %.3fs (%zu nodes)  "
              "B-dfs %.3fs (%zu nodes)  delete %.3fs\n",
              Name, seconds(T1 - T0), seconds(T2 - T1), Fwd,
              seconds(T3 - T2), Bwd, seconds(T4 - T3));
}

} // namespace

int main(int argc, char **argv) {
  RoadNetworkOptions Opts;
  Opts.Width = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 96;
  Opts.Height = Opts.Width;
  std::vector<RoadEdge> Edges = generateRoadNetwork(Opts);
  std::printf("synthetic road network: %llu nodes, %zu edges\n",
              static_cast<unsigned long long>(roadNetworkNodeCount(Opts)),
              Edges.size());

  RelSpecRef Spec = GraphRelational::makeSpec();
  // Fig. 12, decomposition 1: forward index only. Backward DFS must
  // scan — fine forward, quadratic backward.
  runVariant("forward", GraphRelational::makeForwardOnly(Spec), Edges);
  // Decomposition 5: both directions, shared weight node, intrusive
  // containers (removal unlinks both paths without extra lookups).
  runVariant("shared", GraphRelational::makeSharedBidirectional(Spec),
             Edges);
  // Decomposition 9: both directions, duplicated weight leaves.
  runVariant("unshared", GraphRelational::makeUnsharedBidirectional(Spec),
             Edges);
  return 0;
}
