//===- examples/codegen_demo.cpp - The RELC compiler backend -----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The paper's actual deliverable: RELC as a compiler. Feed it a
// relational specification plus a decomposition (here parsed from the
// textual decomposition language of Fig. 3) and it emits a standalone
// C++ class implementing the relational interface with static types and
// the planner's chosen strategies baked in.
//
// Build & run:  ./build/examples/codegen_demo > scheduler_relation.h
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "decomp/Parser.h"

#include <cstdio>

using namespace relc;

int main() {
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  const Catalog &Cat = Spec->catalog();

  // Fig. 2(a) in the textual decomposition language, with intrusive
  // containers on the shared node.
  ParseResult Parsed = parseDecomposition(Spec, R"(
    # the shared per-process payload
    let w : {ns, pid, state} = unit {cpu}
    # left path: find by (ns, pid)
    let y : {ns} = map({pid}, itree, w)
    # right path: enumerate by state
    let z : {state} = map({ns, pid}, ilist, w)
    let x : {} = join(map({ns}, htable, y), map({state}, vector, z))
  )");
  if (!Parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }

  // The method set to synthesize — mirroring the class signature shown
  // in Section 2 of the paper.
  EmitterOptions Opts;
  Opts.ClassName = "scheduler_relation";
  Opts.Queries = {
      {"query_by_ns_pid", Cat.parseSet("ns, pid"), Cat.parseSet("state, cpu")},
      {"query_by_state", Cat.parseSet("state"), Cat.parseSet("ns, pid")},
      {"query_all", ColumnSet(), Cat.allColumns()},
  };
  Opts.RemoveKeys = {Cat.parseSet("ns, pid")};
  Opts.UpdateKeys = {Cat.parseSet("ns, pid")};

  std::fputs(emitCpp(*Parsed.Decomp, Opts).c_str(), stdout);
  return 0;
}
