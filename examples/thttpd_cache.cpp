//===- examples/thttpd_cache.cpp - The web server's mmap cache ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The thttpd scenario of Section 6.2: the web server caches the results
// of mmap() calls — a file is mapped once, shared by concurrent
// requests via a refcount, and unmapped by a periodic cleanup pass once
// idle past a TTL. The cache is one synthesized relation
// maps(file, addr, size, refcount, last_use).
//
// Build & run:  ./build/examples/thttpd_cache [num-requests]
//
//===----------------------------------------------------------------------===//

#include "systems/ThttpdRelational.h"
#include "workloads/MmapTrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>

using namespace relc;

int main(int argc, char **argv) {
  MmapTraceOptions Opts;
  Opts.NumRequests =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200000;
  std::vector<MmapRequest> Trace = generateMmapTrace(Opts);
  std::printf("replaying %zu requests over %u files (zipf %.2f)\n",
              Trace.size(), Opts.NumFiles, Opts.ZipfSkew);

  constexpr int64_t TtlSeconds = 30;
  constexpr size_t ConcurrentRequests = 32;
  ThttpdRelational Cache;
  std::deque<int64_t> InFlight;
  size_t Evicted = 0;
  int64_t LastCleanup = 0;

  auto T0 = std::chrono::steady_clock::now();
  for (const MmapRequest &Q : Trace) {
    Cache.mapFile(Q.FileId, Q.Size, Q.Timestamp);
    InFlight.push_back(Q.FileId);
    // A bounded pool of in-flight requests: the oldest finishes.
    if (InFlight.size() > ConcurrentRequests) {
      Cache.unmapFile(InFlight.front(), Q.Timestamp);
      InFlight.pop_front();
    }
    // Periodic idle cleanup, as in the original module.
    if (Q.Timestamp - LastCleanup >= 10) {
      Evicted += Cache.cleanup(Q.Timestamp, TtlSeconds);
      LastCleanup = Q.Timestamp;
    }
  }
  auto T1 = std::chrono::steady_clock::now();

  std::printf("resident: %zu mappings, %lld bytes; evicted %zu; %.3fs\n",
              Cache.numMapped(),
              static_cast<long long>(Cache.mappedBytes()), Evicted,
              std::chrono::duration<double>(T1 - T0).count());

  WfResult Wf = Cache.relation().checkWellFormed();
  std::printf("cache representation well-formed: %s\n",
              Wf.Ok ? "yes" : Wf.Error.c_str());
  return Wf.Ok ? 0 : 1;
}
