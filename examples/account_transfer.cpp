//===- examples/account_transfer.cpp - Multi-key transactions ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The worked transfer example for ConcurrentRelation::transact: an
// account(owner, acct, balance) relation sharded by owner, with writer
// threads moving balance between random account pairs as atomic
// two-upsert transactions. Each transfer locks exactly the one or two
// owning shard stripes (ascending order, two-phase locking — print the
// lock plan with --plan to see the stripe sets), so transfers on
// disjoint owners run fully in parallel while rivals on shared owners
// serialize. The invariant the transactions exist for: the TOTAL
// balance is conserved exactly, which no sequence of independent
// single-key upserts can promise once a debit and its credit can
// interleave with a rival's.
//
//   account_transfer [--threads N] [--accounts N] [--transfers N] [--plan]
//
// The same relation compiled to static code (the `transaction`
// directive) is tests/codegen/golden/account_tx.relc; this example
// drives the interpreted engine.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "decomp/Builder.h"
#include "workloads/Rng.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace relc;

namespace {

RelSpecRef accountSpec() {
  return RelSpec::make("account", {"owner", "acct", "balance"},
                       {{"owner, acct", "balance"}});
}

/// owner -> acct -> unit{balance}: the natural two-level decomposition
/// (the golden account_tx.relc spells the same shape in the Fig. 3
/// let-language).
Decomposition accountDecomp(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "owner, acct", B.unit("balance"));
  NodeId Y = B.addNode("y", "owner", B.map("acct", DsKind::HashTable, U));
  B.addNode("x", "", B.map("owner", DsKind::HashTable, Y));
  return B.build();
}

int64_t intArg(int argc, char **argv, const char *Flag, int64_t Default) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return std::atoll(argv[I + 1]);
  return Default;
}

} // namespace

int main(int argc, char **argv) {
  const int64_t Threads = intArg(argc, argv, "--threads", 4);
  const int64_t Accounts = intArg(argc, argv, "--accounts", 64);
  const int64_t Transfers = intArg(argc, argv, "--transfers", 20000);
  bool ShowPlan = false;
  for (int I = 1; I < argc; ++I)
    ShowPlan |= std::strcmp(argv[I], "--plan") == 0;
  const int64_t Initial = 1000;

  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId ColBal = Cat.get("balance");
  ConcurrentOptions Opts;
  Opts.NumShards = 8; // sharded by owner (the root key head) by default
  ConcurrentRelation Accts(accountDecomp(Spec), Opts);

  for (int64_t A = 0; A != Accounts; ++A)
    Accts.insert(TupleBuilder(Cat)
                     .set("owner", A / 4)
                     .set("acct", A % 4)
                     .set("balance", Initial)
                     .build());
  const int64_t Total = Accounts * Initial;

  auto KeyOf = [&](int64_t A) {
    return TupleBuilder(Cat).set("owner", A / 4).set("acct", A % 4).build();
  };

  if (ShowPlan) {
    // A sample transfer's lock footprint: two routed upserts touch at
    // most two stripes — never all of them.
    std::vector<TxOp> Sample;
    auto Noop = [](const BindingFrame *, Tuple &) {};
    Sample.push_back(TxOp::upsert(KeyOf(0), Noop));
    Sample.push_back(TxOp::upsert(KeyOf(Accounts - 1), Noop));
    ConcurrentRelation::TxLockPlan Plan = Accts.transactLockPlan(Sample);
    std::printf("lock plan for transfer(%lld -> %lld): %s stripes {",
                0LL, static_cast<long long>(Accounts - 1),
                Plan.AllShards ? "ALL" : "routed");
    for (size_t I = 0; I != Plan.Stripes.size(); ++I)
      std::printf("%s%u", I ? ", " : "", Plan.Stripes[I]);
    std::printf("} of %u\n", Accts.numShards());
  }

  std::atomic<uint64_t> Committed{0};
  std::vector<std::thread> Workers;
  for (int64_t T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      Rng R(0xacc0 + static_cast<uint64_t>(T));
      for (int64_t I = T; I < Transfers; I += Threads) {
        int64_t From = R.range(0, Accounts - 1);
        int64_t To = R.range(0, Accounts - 1);
        if (To == From)
          To = (To + 1) % Accounts;
        int64_t Amount = R.range(1, 50);
        // Debit and credit as ONE serializable unit: the debit's Fn
        // clamps to the live balance it observes under the held shard
        // locks, so balances never go negative and no increment is
        // ever lost, however the threads interleave.
        int64_t Moved = 0;
        TxResult Res = Accts.transact([&](TxBatch &Tx) {
          Tx.upsert(KeyOf(From), [&](const BindingFrame *Cur, Tuple &V) {
            int64_t Bal = Cur ? Cur->get(ColBal).asInt() : 0;
            Moved = Amount < Bal ? Amount : Bal;
            V.set(ColBal, Value::ofInt(Bal - Moved));
          });
          Tx.upsert(KeyOf(To), [&](const BindingFrame *Cur, Tuple &V) {
            int64_t Bal = Cur ? Cur->get(ColBal).asInt() : 0;
            V.set(ColBal, Value::ofInt(Bal + Moved));
          });
        });
        if (Res.Committed)
          Committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  int64_t Sum = 0;
  size_t Rows = 0;
  Accts.scanFrames(Tuple(), Cat.parseSet("balance"),
                   [&](const BindingFrame &F) {
                     Sum += F.get(ColBal).asInt();
                     ++Rows;
                     return true;
                   });

  std::printf("accounts: %lld, transfers: %lld over %lld threads, "
              "committed: %llu\n",
              static_cast<long long>(Accounts),
              static_cast<long long>(Transfers),
              static_cast<long long>(Threads),
              static_cast<unsigned long long>(Committed.load()));
  std::printf("total balance: %lld (expected %lld) across %zu accounts\n",
              static_cast<long long>(Sum), static_cast<long long>(Total),
              Rows);
  if (Sum != Total || Rows != static_cast<size_t>(Accounts)) {
    std::printf("CONSERVATION VIOLATED\n");
    return 1;
  }
  std::printf("conserved: every debit matched its credit exactly\n");
  return 0;
}
