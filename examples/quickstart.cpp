//===- examples/quickstart.cpp - The paper's scheduler, end to end -----------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The running example of the paper, written against the public API:
//
//  1. describe the data as a relation — columns plus functional
//     dependencies (Section 2);
//  2. pick a decomposition — how the relation lives in memory
//     (Section 3, Fig. 2(a));
//  3. operate on it through the synthesized relational interface; the
//     library plans queries and maintains every invariant (Section 4).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "decomp/Builder.h"
#include "decomp/Printer.h"
#include "runtime/SynthesizedRelation.h"

#include <cstdio>

using namespace relc;

namespace {
constexpr int64_t Sleeping = 0;
constexpr int64_t Running = 1;
} // namespace

int main() {
  // -- 1. The relational specification 〈C, ∆〉 ---------------------------
  // Processes have a namespace, a pid, a state and a cpu counter; a
  // (ns, pid) pair identifies at most one process.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  const Catalog &Cat = Spec->catalog();

  // -- 2. The decomposition (Fig. 2(a)) ----------------------------------
  // Left path:  hash(ns) -> hash(pid) -> {cpu}      (find by id)
  // Right path: vector(state) -> list(ns, pid) ------^ (enumerate by state)
  // Node w is *shared*: one physical copy of each process's cpu value.
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::IList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  Decomposition D = B.build();

  std::printf("decomposition:\n%s\n", printDecomposition(D).c_str());

  // The library refuses inadequate decompositions; this one satisfies
  // the Fig. 6 judgment for the spec above.
  SynthesizedRelation Procs{std::move(D)};

  // -- 3. The five relational operations ---------------------------------
  Procs.insert(TupleBuilder(Cat)
                   .set("ns", 7)
                   .set("pid", 42)
                   .set("state", Running)
                   .set("cpu", 0)
                   .build());
  Procs.insert(TupleBuilder(Cat)
                   .set("ns", 7)
                   .set("pid", 43)
                   .set("state", Sleeping)
                   .set("cpu", 2)
                   .build());
  Procs.insert(TupleBuilder(Cat)
                   .set("ns", 8)
                   .set("pid", 42)
                   .set("state", Running)
                   .set("cpu", 9)
                   .build());

  // query r 〈state: R〉 {ns, pid} — who is running?
  std::printf("running processes:\n");
  for (const Tuple &T : Procs.query(
           TupleBuilder(Cat).set("state", Running).build(),
           Cat.parseSet("ns, pid")))
    std::printf("  ns=%lld pid=%lld\n",
                static_cast<long long>(T.get(Cat.get("ns")).asInt()),
                static_cast<long long>(T.get(Cat.get("pid")).asInt()));

  // The planner picked a strategy per query shape; inspect it:
  const QueryPlan *Plan =
      Procs.planFor(Cat.parseSet("state"), Cat.parseSet("ns, pid"));
  std::printf("plan for state->(ns,pid): %s\n", Plan->str().c_str());

  // update r 〈ns: 7, pid: 42〉 〈state: S〉 — one call, and the process
  // moves between the two state lists with the hash entries intact.
  Procs.update(TupleBuilder(Cat).set("ns", 7).set("pid", 42).build(),
               TupleBuilder(Cat).set("state", Sleeping).build());

  // query r 〈ns: 7, pid: 42〉 {state, cpu}.
  for (const Tuple &T : Procs.query(
           TupleBuilder(Cat).set("ns", 7).set("pid", 42).build(),
           Cat.parseSet("state, cpu")))
    std::printf("process (7, 42): state=%lld cpu=%lld\n",
                static_cast<long long>(T.get(Cat.get("state")).asInt()),
                static_cast<long long>(T.get(Cat.get("cpu")).asInt()));

  // remove r 〈ns: 7〉 — removes every namespace-7 process from *all*
  // indexes at once; no dangling hash entries, no stale list nodes.
  size_t Removed =
      Procs.remove(TupleBuilder(Cat).set("ns", 7).build());
  std::printf("removed %zu processes from namespace 7; %zu remain\n",
              Removed, Procs.size());

  // The invariants of Section 3.3 hold at every step; check them:
  WfResult Wf = Procs.checkWellFormed();
  std::printf("well-formed: %s\n", Wf.Ok ? "yes" : Wf.Error.c_str());
  return Wf.Ok ? 0 : 1;
}
