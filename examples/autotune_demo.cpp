//===- examples/autotune_demo.cpp - The Section 5 autotuner ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the autotuner: given only the relational specification
// of the graph edges and a benchmark callback, it enumerates every
// adequate decomposition up to an edge bound, measures each, and ranks
// them — the process behind Fig. 11.
//
// Build & run:  ./build/examples/autotune_demo [max-edges] [grid-width]
//
//===----------------------------------------------------------------------===//

#include "autotuner/Autotuner.h"
#include "decomp/Printer.h"
#include "runtime/SynthesizedRelation.h"
#include "workloads/RoadNetwork.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace relc;

int main(int argc, char **argv) {
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  const Catalog &Cat = Spec->catalog();

  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  Opts.DsPalette = {DsKind::HashTable, DsKind::Btree};
  Opts.CostLimit = 2.0; // seconds; slower candidates count as timeouts

  RoadNetworkOptions Net;
  Net.Width = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 48;
  Net.Height = Net.Width;
  std::vector<RoadEdge> Edges = generateRoadNetwork(Net);
  std::printf("workload: build %zu edges, enumerate successors of every "
              "node, tear down\n\n",
              Edges.size());

  // The benchmark: construct, forward-traverse, destruct; elapsed
  // seconds is the cost. Any metric works (Section 5).
  BenchmarkFn Bench = [&](const Decomposition &D) -> double {
    auto T0 = std::chrono::steady_clock::now();
    SynthesizedRelation R{Decomposition(D)};
    for (const RoadEdge &E : Edges) {
      Tuple T = TupleBuilder(Cat)
                    .set("src", E.Src)
                    .set("dst", E.Dst)
                    .set("weight", E.Weight)
                    .build();
      R.insert(T);
      if (std::chrono::steady_clock::now() - T0 >
          std::chrono::duration<double>(Opts.CostLimit))
        return std::numeric_limits<double>::infinity();
    }
    size_t Sum = 0;
    for (int64_t N = 0; N != static_cast<int64_t>(roadNetworkNodeCount(Net));
         ++N)
      R.scan(TupleBuilder(Cat).set("src", N).build(), Cat.parseSet("dst"),
             [&](const Tuple &) {
               ++Sum;
               return true;
             });
    (void)Sum;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };

  std::vector<TunedDecomposition> Ranked = autotune(Spec, Bench, Opts);

  std::printf("%zu decomposition structures ranked:\n\n", Ranked.size());
  unsigned Rank = 1;
  for (const TunedDecomposition &T : Ranked) {
    if (T.TimedOut) {
      std::printf("#%-3u TIMEOUT (> %.1fs)\n", Rank++, Opts.CostLimit);
      continue;
    }
    std::printf("#%-3u %.4fs\n%s\n", Rank++, T.Cost,
                printDecomposition(T.Decomp).c_str());
    if (Rank > 6 && !T.TimedOut) {
      std::printf("... (%zu more)\n", Ranked.size() - Rank + 1);
      break;
    }
  }
  return 0;
}
