//===- bench/bench_systems_parity.cpp - Section 6.2 parity claim -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Section 6.2's performance claim: "for each system, the relational and
// non-relational versions had equivalent performance". Replays the same
// trace through the hand-coded baseline and the synthesized relational
// module for every case study and prints the throughput ratio.
//
//   bench_systems_parity [scale]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/GraphBaseline.h"
#include "baselines/IpcapBaseline.h"
#include "baselines/SchedulerBaseline.h"
#include "baselines/ThttpdBaseline.h"
#include "baselines/ZtopoBaseline.h"
#include "systems/GraphRelational.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"
#include "workloads/MmapTrace.h"
#include "workloads/PacketTrace.h"
#include "workloads/RoadNetwork.h"
#include "workloads/Rng.h"
#include "workloads/TileTrace.h"

#include <cstdio>
#include <cstdlib>
#include <deque>

using namespace relc;
using namespace relcbench;

namespace {

void report(const char *Name, size_t Ops, double Base, double Synth) {
  std::printf("%-10s %9zu ops   baseline %8.4fs (%7.2f Mops/s)   "
              "synthesized %8.4fs (%7.2f Mops/s)   ratio %.2fx\n",
              Name, Ops, Base, Ops / Base / 1e6, Synth, Ops / Synth / 1e6,
              Synth / Base);
}

template <typename CacheT>
double runThttpd(CacheT &Cache, const std::vector<MmapRequest> &Trace) {
  Clock::time_point T0 = Clock::now();
  std::deque<int64_t> InFlight;
  int64_t LastCleanup = 0;
  for (const MmapRequest &Q : Trace) {
    Cache.mapFile(Q.FileId, Q.Size, Q.Timestamp);
    InFlight.push_back(Q.FileId);
    if (InFlight.size() > 32) {
      Cache.unmapFile(InFlight.front(), Q.Timestamp);
      InFlight.pop_front();
    }
    if (Q.Timestamp - LastCleanup >= 10) {
      Cache.cleanup(Q.Timestamp, 30);
      LastCleanup = Q.Timestamp;
    }
  }
  return secondsSince(T0);
}

template <typename CacheT>
double runZtopo(CacheT &Cache, const std::vector<TileRequest> &Trace) {
  constexpr int64_t Budget = 4 * 1024 * 1024;
  Clock::time_point T0 = Clock::now();
  for (const TileRequest &Q : Trace) {
    TileState S;
    if (!Cache.touchTile(Q.TileId, S))
      Cache.addTile(Q.TileId, TileState::InMemory, Q.Size);
    if (Cache.bytesIn(TileState::InMemory) > Budget)
      Cache.evictToBudget(TileState::InMemory, Budget);
  }
  return secondsSince(T0);
}

template <typename SchedT> double runScheduler(SchedT &S, size_t Ops) {
  Rng R(42);
  Clock::time_point T0 = Clock::now();
  for (size_t Op = 0; Op != Ops; ++Op) {
    int64_t Ns = static_cast<int64_t>(R.below(8));
    int64_t Pid = static_cast<int64_t>(R.below(2048));
    switch (R.below(6)) {
    case 0:
    case 1:
      S.addProcess(Ns, Pid,
                   R.chance(0.5) ? ProcState::Running : ProcState::Sleeping,
                   0);
      break;
    case 2:
      S.removeProcess(Ns, Pid);
      break;
    case 3:
      S.setState(Ns, Pid,
                 R.chance(0.5) ? ProcState::Running : ProcState::Sleeping);
      break;
    case 4:
      S.chargeCpu(Ns, Pid, 1);
      break;
    case 5:
      S.cpuOf(Ns, Pid);
      break;
    }
  }
  return secondsSince(T0);
}

} // namespace

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  // --- IpCap -------------------------------------------------------------
  {
    PacketTraceOptions Opts;
    Opts.NumPackets = static_cast<size_t>(300000 * Scale);
    std::vector<Packet> Trace = generatePacketTrace(Opts);
    double Base, Synth;
    {
      IpcapBaseline B;
      Clock::time_point T0 = Clock::now();
      for (const Packet &P : Trace)
        B.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
      Base = secondsSince(T0);
    }
    {
      IpcapRelational S;
      Clock::time_point T0 = Clock::now();
      for (const Packet &P : Trace)
        S.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
      Synth = secondsSince(T0);
    }
    report("ipcap", Trace.size(), Base, Synth);
  }

  // --- thttpd ------------------------------------------------------------
  {
    MmapTraceOptions Opts;
    Opts.NumRequests = static_cast<size_t>(200000 * Scale);
    std::vector<MmapRequest> Trace = generateMmapTrace(Opts);
    ThttpdBaseline B;
    ThttpdRelational S;
    double Base = runThttpd(B, Trace);
    double Synth = runThttpd(S, Trace);
    report("thttpd", Trace.size(), Base, Synth);
  }

  // --- ZTopo -------------------------------------------------------------
  {
    TileTraceOptions Opts;
    Opts.NumRequests = static_cast<size_t>(100000 * Scale);
    std::vector<TileRequest> Trace = generateTileTrace(Opts);
    ZtopoBaseline B;
    ZtopoRelational S;
    double Base = runZtopo(B, Trace);
    double Synth = runZtopo(S, Trace);
    report("ztopo", Trace.size(), Base, Synth);
  }

  // --- Scheduler (the running example) ------------------------------------
  {
    size_t Ops = static_cast<size_t>(200000 * Scale);
    SchedulerBaseline B;
    SchedulerRelational S;
    double Base = runScheduler(B, Ops);
    double Synth = runScheduler(S, Ops);
    report("scheduler", Ops, Base, Synth);
  }

  // --- Graph -------------------------------------------------------------
  {
    RoadNetworkOptions Opts;
    Opts.Width = static_cast<unsigned>(64 * Scale);
    Opts.Height = Opts.Width;
    std::vector<RoadEdge> Edges = generateRoadNetwork(Opts);
    double Base, Synth;
    {
      GraphBaseline B;
      Clock::time_point T0 = Clock::now();
      for (const RoadEdge &E : Edges)
        B.addEdge(E.Src, E.Dst, E.Weight);
      for (const RoadEdge &E : Edges)
        B.removeEdge(E.Src, E.Dst);
      Base = secondsSince(T0);
    }
    {
      GraphRelational S(GraphRelational::makeSharedBidirectional(
          GraphRelational::makeSpec()));
      Clock::time_point T0 = Clock::now();
      for (const RoadEdge &E : Edges)
        S.addEdge(E.Src, E.Dst, E.Weight);
      for (const RoadEdge &E : Edges)
        S.removeEdge(E.Src, E.Dst);
      Synth = secondsSince(T0);
    }
    report("graph", Edges.size() * 2, Base, Synth);
  }

  std::printf("\n# shape check (paper): ratios near 1x mean the synthesized "
              "modules match hand-written\n"
              "# performance. The dynamic engine interprets plans and "
              "tuples, so some overhead is\n"
              "# expected here; the RELC code generator (bench: see "
              "tests/codegen) removes it.\n");
  return 0;
}
