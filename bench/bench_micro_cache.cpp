//===- bench/bench_micro_cache.cpp - Cache microbenchmark --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The cache microbenchmark of Section 6.1, "based on the real systems
// discussed in the next section": hit/miss/evict cycles over the
// thttpd-style mmap cache and the ZTopo-style tile cache, synthesized
// vs hand-coded.
//
//===----------------------------------------------------------------------===//

#include "baselines/ThttpdBaseline.h"
#include "baselines/ZtopoBaseline.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"
#include "workloads/MmapTrace.h"
#include "workloads/TileTrace.h"

#include <benchmark/benchmark.h>

using namespace relc;

namespace {

const std::vector<MmapRequest> &mmapTrace() {
  static const std::vector<MmapRequest> Trace = [] {
    MmapTraceOptions Opts;
    Opts.NumRequests = 1 << 15;
    Opts.NumFiles = 2048;
    return generateMmapTrace(Opts);
  }();
  return Trace;
}

const std::vector<TileRequest> &tileTrace() {
  static const std::vector<TileRequest> Trace = [] {
    TileTraceOptions Opts;
    Opts.NumRequests = 1 << 15;
    Opts.MapWidth = 128;
    return generateTileTrace(Opts);
  }();
  return Trace;
}

template <typename CacheT> void BM_MmapCycle(benchmark::State &State) {
  const auto &Trace = mmapTrace();
  for (auto _ : State) {
    CacheT Cache;
    size_t I = 0;
    for (const MmapRequest &Q : Trace) {
      Cache.mapFile(Q.FileId, Q.Size, Q.Timestamp);
      if (I >= 16)
        Cache.unmapFile(Trace[I - 16].FileId, Q.Timestamp);
      if (++I % 4096 == 0)
        Cache.cleanup(Q.Timestamp, 30);
    }
    benchmark::DoNotOptimize(Cache.numMapped());
  }
  State.SetItemsProcessed(State.iterations() * Trace.size());
}

template <typename CacheT> void BM_MmapHit(benchmark::State &State) {
  CacheT Cache;
  for (int64_t F = 0; F < 512; ++F)
    Cache.mapFile(F, 4096, 0);
  int64_t F = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.mapFile(F % 512, 4096, 1));
    Cache.unmapFile(F % 512, 1);
    ++F;
  }
}

template <typename CacheT> void BM_TileChurn(benchmark::State &State) {
  const auto &Trace = tileTrace();
  constexpr int64_t Budget = 2 * 1024 * 1024;
  for (auto _ : State) {
    CacheT Cache;
    for (const TileRequest &Q : Trace) {
      TileState S;
      if (!Cache.touchTile(Q.TileId, S))
        Cache.addTile(Q.TileId, TileState::InMemory, Q.Size);
      if (Cache.bytesIn(TileState::InMemory) > Budget)
        Cache.evictToBudget(TileState::InMemory, Budget);
    }
    benchmark::DoNotOptimize(Cache.numTiles());
  }
  State.SetItemsProcessed(State.iterations() * Trace.size());
}

template <typename CacheT> void BM_TileTouch(benchmark::State &State) {
  CacheT Cache;
  for (int64_t T = 0; T < 1024; ++T)
    Cache.addTile(T, TileState::InMemory, 1024);
  int64_t T = 0;
  for (auto _ : State) {
    TileState S;
    benchmark::DoNotOptimize(Cache.touchTile(T % 1024, S));
    ++T;
  }
}

} // namespace

BENCHMARK(BM_MmapCycle<ThttpdRelational>);
BENCHMARK(BM_MmapCycle<ThttpdBaseline>);
BENCHMARK(BM_MmapHit<ThttpdRelational>);
BENCHMARK(BM_MmapHit<ThttpdBaseline>);
BENCHMARK(BM_TileChurn<ZtopoRelational>);
BENCHMARK(BM_TileChurn<ZtopoBaseline>);
BENCHMARK(BM_TileTouch<ZtopoRelational>);
BENCHMARK(BM_TileTouch<ZtopoBaseline>);

BENCHMARK_MAIN();
