//===- bench/bench_hotpath.cpp - Engine hot-path microbenchmark --------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Steady-state insert/query/remove/update loops over the five systems'
// decompositions, driven straight through SynthesizedRelation. Every
// loop is measured twice over: wall-clock throughput and heap
// allocations per operation (a global operator-new hook), because the
// paper's "as fast as the hand-written version" claim dies first by
// malloc. --json <path> emits the machine-readable trajectory
// (BENCH_hotpath.json); --quick shrinks the loops for CI smoke runs;
// --assert-zero-alloc fails the run if a steady-state query loop
// allocates.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "systems/GraphRelational.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"

#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <vector>

using namespace relc;
using namespace relcbench;

//===----------------------------------------------------------------------===//
// Allocation-counting hook: every global operator new bumps a counter,
// so a loop's heap traffic is (count after - count before).
//===----------------------------------------------------------------------===//

static size_t GlobalAllocCount = 0;

static void *countedAlloc(size_t Sz) {
  ++GlobalAllocCount;
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}

static void *countedAlignedAlloc(size_t Sz, std::align_val_t Al) {
  ++GlobalAllocCount;
  size_t Align = static_cast<size_t>(Al);
  // aligned_alloc requires the size to be a multiple of the alignment.
  size_t Rounded = (Sz + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

void *operator new(size_t Sz) { return countedAlloc(Sz); }
void *operator new[](size_t Sz) { return countedAlloc(Sz); }
void *operator new(size_t Sz, std::align_val_t Al) {
  return countedAlignedAlloc(Sz, Al);
}
void *operator new[](size_t Sz, std::align_val_t Al) {
  return countedAlignedAlloc(Sz, Al);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }

namespace {

//===----------------------------------------------------------------------===//
// Workload descriptions: one per system, all columns integer-valued.
//===----------------------------------------------------------------------===//

struct Workload {
  std::string Name;
  SynthesizedRelation Rel;
  /// Builds the I-th full tuple (deterministic, unique per key).
  std::function<Tuple(int64_t)> Make;
  ColumnSet KeyCols;   ///< FD key: probe/remove/update pattern columns.
  ColumnSet ValueCols; ///< Outputs for the key probe.
  Tuple ScanPattern;   ///< Selective non-key pattern for the scan loop.
  ColumnSet ScanOut;
  ColumnId UpdateCol;  ///< Non-key column rewritten by the update loop.

  Workload(std::string Name, Decomposition D)
      : Name(std::move(Name)), Rel(std::move(D)) {}
};

// SynthesizedRelation owns a non-movable InstanceGraph, so workloads
// live behind unique_ptr.
using WorkloadPtr = std::unique_ptr<Workload>;

WorkloadPtr makeScheduler() {
  RelSpecRef Spec = SchedulerRelational::makeSpec();
  auto W = std::make_unique<Workload>(
      "scheduler", SchedulerRelational::makeDefaultDecomposition(Spec));
  const Catalog &Cat = W->Rel.catalog();
  W->Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("ns", I % 16)
        .set("pid", I)
        .set("state", I % 2)
        .set("cpu", I % 97)
        .build();
  };
  W->KeyCols = Cat.parseSet("ns, pid");
  W->ValueCols = Cat.parseSet("state, cpu");
  W->ScanPattern = TupleBuilder(Cat).set("state", 1).build();
  W->ScanOut = Cat.parseSet("ns, pid");
  W->UpdateCol = Cat.get("cpu");
  return W;
}

WorkloadPtr makeGraph() {
  RelSpecRef Spec = GraphRelational::makeSpec();
  auto W = std::make_unique<Workload>(
      "graph", GraphRelational::makeSharedBidirectional(Spec));
  const Catalog &Cat = W->Rel.catalog();
  W->Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("src", I % 256)
        .set("dst", I / 256)
        .set("weight", I % 1009)
        .build();
  };
  W->KeyCols = Cat.parseSet("src, dst");
  W->ValueCols = Cat.parseSet("weight");
  W->ScanPattern = TupleBuilder(Cat).set("src", 3).build();
  W->ScanOut = Cat.parseSet("dst, weight");
  W->UpdateCol = Cat.get("weight");
  return W;
}

WorkloadPtr makeIpcap() {
  RelSpecRef Spec = IpcapRelational::makeSpec();
  auto W = std::make_unique<Workload>(
      "ipcap", IpcapRelational::makeDefaultDecomposition(Spec));
  const Catalog &Cat = W->Rel.catalog();
  W->Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("local", I % 128)
        .set("remote", I)
        .set("bytes_in", I * 3 % 65536)
        .set("bytes_out", I * 7 % 65536)
        .set("packets", I % 1024)
        .build();
  };
  W->KeyCols = Cat.parseSet("local, remote");
  W->ValueCols = Cat.parseSet("bytes_in, bytes_out, packets");
  W->ScanPattern = TupleBuilder(Cat).set("local", 7).build();
  W->ScanOut = Cat.parseSet("remote, packets");
  W->UpdateCol = Cat.get("packets");
  return W;
}

WorkloadPtr makeThttpd() {
  RelSpecRef Spec = ThttpdRelational::makeSpec();
  auto W = std::make_unique<Workload>(
      "thttpd", ThttpdRelational::makeDefaultDecomposition(Spec));
  const Catalog &Cat = W->Rel.catalog();
  W->Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("file", I)
        .set("addr", I * 4096)
        .set("size", (I % 64 + 1) * 512)
        .set("refcount", I % 4)
        .set("last_use", I % 100000)
        .build();
  };
  W->KeyCols = Cat.parseSet("file");
  W->ValueCols = Cat.parseSet("addr, size, refcount, last_use");
  W->ScanPattern = TupleBuilder(Cat).set("refcount", 2).build();
  W->ScanOut = Cat.parseSet("file, addr");
  W->UpdateCol = Cat.get("last_use");
  return W;
}

WorkloadPtr makeZtopo() {
  RelSpecRef Spec = ZtopoRelational::makeSpec();
  auto W = std::make_unique<Workload>(
      "ztopo", ZtopoRelational::makeDefaultDecomposition(Spec));
  const Catalog &Cat = W->Rel.catalog();
  W->Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("tile", I)
        .set("state", I % 3)
        .set("size", (I % 128 + 1) * 256)
        .set("stamp", I % 100000)
        .build();
  };
  W->KeyCols = Cat.parseSet("tile");
  W->ValueCols = Cat.parseSet("state, size, stamp");
  W->ScanPattern = TupleBuilder(Cat).set("state", 1).build();
  W->ScanOut = Cat.parseSet("tile, stamp");
  W->UpdateCol = Cat.get("stamp");
  return W;
}

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

/// Keeps computed-but-otherwise-unused loop results alive so the
/// optimizer cannot elide the measured work.
volatile int64_t BenchSinkStore = 0;
void benchSink(int64_t V) { BenchSinkStore = V; }

struct Measured {
  double Seconds = 0;
  size_t Ops = 0;
  size_t Allocs = 0;

  double nsPerOp() const { return Ops ? Seconds * 1e9 / double(Ops) : 0; }
  double opsPerSec() const { return Seconds > 0 ? double(Ops) / Seconds : 0; }
  double allocsPerOp() const {
    return Ops ? double(Allocs) / double(Ops) : 0;
  }
};

template <typename FnT> Measured measure(size_t Ops, FnT &&Fn) {
  Measured M;
  M.Ops = Ops;
  size_t Before = GlobalAllocCount;
  Clock::time_point Start = Clock::now();
  Fn();
  M.Seconds = secondsSince(Start);
  M.Allocs = GlobalAllocCount - Before;
  return M;
}

void report(JsonReporter &Json, const std::string &System,
            const char *Loop, const Measured &M) {
  std::string Name = System + "." + Loop;
  std::printf("  %-28s %10.1f ns/op %12.0f ops/s %8.3f allocs/op\n",
              Loop, M.nsPerOp(), M.opsPerSec(), M.allocsPerOp());
  Json.record(Name)
      .metric("ops", double(M.Ops))
      .metric("seconds", M.Seconds)
      .metric("ns_per_op", M.nsPerOp())
      .metric("ops_per_sec", M.opsPerSec())
      .metric("allocs_per_op", M.allocsPerOp());
}

/// Runs the full loop suite for one workload. \returns the number of
/// zero-alloc violations among the steady-state query loops.
int runWorkload(Workload &W, size_t N, size_t Probes, size_t Scans,
                size_t Mutations, JsonReporter &Json, bool AssertZeroAlloc) {
  std::printf("%s (n=%zu)\n", W.Name.c_str(), N);
  SynthesizedRelation &R = W.Rel;

  // Pre-build the tuples so the loops measure the engine, not the
  // TupleBuilder's catalog lookups.
  std::vector<Tuple> Tuples;
  Tuples.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Tuples.push_back(W.Make(int64_t(I)));
  std::vector<Tuple> KeyPats;
  KeyPats.reserve(N);
  for (const Tuple &T : Tuples)
    KeyPats.push_back(T.project(W.KeyCols));

  // Fresh-tuple inserts (cold containers growing to steady state).
  Measured Ins = measure(N, [&] {
    for (const Tuple &T : Tuples)
      R.insert(T);
  });
  report(Json, W.Name, "insert", Ins);

  // Steady-state duplicate insert: one existence probe, no mutation.
  R.insert(Tuples[0]); // warm-up
  Measured Dup = measure(Probes, [&] {
    for (size_t I = 0; I != Probes; ++I)
      R.insert(Tuples[I % N]);
  });
  report(Json, W.Name, "dup_insert", Dup);

  // Key probe: pattern binds the FD key, outputs the value columns.
  // One warm-up probe per shape populates the plan cache, so the
  // measured loops are steady state.
  R.scan(KeyPats[0], W.ValueCols, [&](const Tuple &) { return false; });
  size_t Found = 0;
  Measured Probe = measure(Probes, [&] {
    for (size_t I = 0; I != Probes; ++I)
      R.scan(KeyPats[I % N], W.ValueCols, [&](const Tuple &) {
        ++Found;
        return false;
      });
  });
  report(Json, W.Name, "query_key", Probe);
  if (Found != Probes)
    std::printf("  WARNING: key probe found %zu/%zu\n", Found, Probes);

  // The same probe through the frame sink: values are read straight
  // from the binding registers, so no tuple materializes even for
  // relations too wide for Tuple's inline storage.
  ColumnId ValueCol = W.ValueCols.first();
  int64_t Sum = 0;
  Measured ProbeF = measure(Probes, [&] {
    for (size_t I = 0; I != Probes; ++I)
      R.scanFrames(KeyPats[I % N], W.ValueCols, [&](const BindingFrame &F) {
        Sum += F.get(ValueCol).asInt();
        return false;
      });
  });
  report(Json, W.Name, "query_key_frames", ProbeF);
  benchSink(Sum);

  // Selective scan (falls back to a full scan if the decomposition has
  // no valid plan for the selective shape).
  Tuple ScanPat = W.ScanPattern;
  ColumnSet ScanOut = W.ScanOut;
  if (!R.planFor(ScanPat.columns(), ScanOut)) {
    ScanPat = Tuple();
    ScanOut = R.catalog().allColumns();
  }
  R.scan(ScanPat, ScanOut, [&](const Tuple &) { return false; }); // warm-up
  size_t Rows = 0;
  Measured Scan = measure(Scans, [&] {
    for (size_t I = 0; I != Scans; ++I)
      R.scan(ScanPat, ScanOut, [&](const Tuple &) {
        ++Rows;
        return true;
      });
  });
  report(Json, W.Name, "query_scan", Scan);
  if (Scans > 0) {
    double RowsPerSec =
        Scan.Seconds > 0 ? double(Rows) / Scan.Seconds : 0;
    Json.record(W.Name + ".query_scan_rows")
        .metric("rows", double(Rows))
        .metric("rows_per_sec", RowsPerSec);
    std::printf("  %-28s %10zu rows %14.0f rows/s\n", "query_scan_rows",
                Rows, RowsPerSec);
  }

  // The selective scan through the frame sink. Reads a column that is
  // in the scan's output set, so it is guaranteed bound at emission.
  ColumnId ScanCol = ScanOut.first();
  size_t RowsF = 0;
  Measured ScanF = measure(Scans, [&] {
    for (size_t I = 0; I != Scans; ++I)
      R.scanFrames(ScanPat, ScanOut, [&](const BindingFrame &F) {
        Sum += F.get(ScanCol).asInt();
        ++RowsF;
        return true;
      });
  });
  report(Json, W.Name, "query_scan_frames", ScanF);
  benchSink(Sum + int64_t(RowsF));

  // Update loop: rewrite one non-key column through the key pattern.
  {
    Tuple Changes; // warm-up: populates the plan + cut caches
    Changes.set(W.UpdateCol, Value::ofInt(0));
    R.update(KeyPats[0], Changes);
  }
  Measured Upd = measure(Mutations, [&] {
    for (size_t I = 0; I != Mutations; ++I) {
      Tuple Changes;
      Changes.set(W.UpdateCol, Value::ofInt(int64_t(I % 1009)));
      R.update(KeyPats[I % N], Changes);
    }
  });
  report(Json, W.Name, "update", Upd);

  // Remove + reinsert: full mutation churn at steady-state size.
  R.remove(KeyPats[0]); // warm-up
  R.insert(Tuples[0]);
  Measured Rem = measure(Mutations, [&] {
    for (size_t I = 0; I != Mutations; ++I) {
      R.remove(KeyPats[I % N]);
      R.insert(Tuples[I % N]);
    }
  });
  report(Json, W.Name, "remove_insert", Rem);

  int Violations = 0;
  if (AssertZeroAlloc) {
    // The steady-state query loops must not touch the heap; the update
    // loop builds its Changes tuple inline, so it is also alloc-free
    // on small-arity relations but not asserted here.
    // The tuple-emitting query loops are asserted only for relations
    // narrow enough that the emitted tuple stays in inline storage;
    // the frame-sink loops must be allocation-free for any catalog
    // within BindingFrame::InlineColumns (all five systems are).
    const struct {
      const char *Loop;
      const Measured *M;
    } Checks[] = {{"dup_insert", &Dup},
                  {"query_key_frames", &ProbeF},
                  {"query_scan_frames", &ScanF}};
    for (const auto &C : Checks) {
      if (C.M->Allocs != 0) {
        std::printf("  ZERO-ALLOC VIOLATION: %s.%s made %zu allocations\n",
                    W.Name.c_str(), C.Loop, C.M->Allocs);
        ++Violations;
      }
    }
  }
  return Violations;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = hasArg(argc, argv, "--quick");
  bool AssertZeroAlloc = hasArg(argc, argv, "--assert-zero-alloc");
  const char *JsonPath = argValue(argc, argv, "--json");
  if (hasArg(argc, argv, "--json") && !JsonPath) {
    std::fprintf(stderr, "error: --json requires a path argument\n");
    return 1;
  }

  size_t N = Quick ? 10000 : 50000;
  size_t Probes = Quick ? 20000 : 200000;
  size_t Scans = Quick ? 5 : 50;
  size_t Mutations = Quick ? 5000 : 20000;

  JsonReporter Json("hotpath", Quick ? "quick" : "full");
  int Violations = 0;

  WorkloadPtr Workloads[] = {makeScheduler(), makeGraph(), makeIpcap(),
                             makeThttpd(), makeZtopo()};
  for (WorkloadPtr &W : Workloads)
    Violations +=
        runWorkload(*W, N, Probes, Scans, Mutations, Json, AssertZeroAlloc);

  if (JsonPath && !Json.write(JsonPath))
    return 1;
  if (Violations) {
    std::printf("%d zero-alloc violation(s)\n", Violations);
    return 1;
  }
  return 0;
}
