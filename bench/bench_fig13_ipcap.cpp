//===- bench/bench_fig13_ipcap.cpp - Figure 13 reproduction ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Figure 13: elapsed time for IpCap to log a random packet trace, for
// the autotuner's decompositions of the flow relation up to 4 map
// edges, ranked by elapsed time; decompositions exceeding the limit are
// elided (the paper's 58 of 84). Also reports:
//  - the paper's "best vs transposed" comparison (btree(local) →
//    hash(remote) beats the transposed variant severalfold), and
//  - parity with the hand-coded baseline.
//
//   bench_fig13_ipcap [num-packets] [time-limit-seconds] [max-edges]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "autotuner/Enumerator.h"
#include "baselines/IpcapBaseline.h"
#include "systems/IpcapRelational.h"
#include "workloads/PacketTrace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace relc;
using namespace relcbench;

namespace {

double replay(IpcapRelational &Daemon, const std::vector<Packet> &Trace,
              double Limit) {
  Deadline Dl(Limit);
  size_t Tick = 0;
  for (const Packet &P : Trace) {
    Daemon.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    if (++Tick % 1024 == 0 && Dl.expired())
      return -1;
  }
  // Drain to the log, as the daemon's periodic pass does.
  (void)Daemon.flush();
  return Dl.elapsed();
}

} // namespace

int main(int argc, char **argv) {
  PacketTraceOptions TOpts;
  TOpts.NumPackets =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 300000;
  double Limit = argc > 2 ? std::atof(argv[2]) : 2.0;
  EnumeratorOptions EOpts;
  EOpts.MaxEdges = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
  EOpts.MaxJoinWidth = 2;
  EOpts.MaxResults = 150;

  std::vector<Packet> Trace = generatePacketTrace(TOpts);
  std::printf("# Figure 13: IpCap logging %zu random packets, limit %.1fs\n",
              Trace.size(), Limit);

  RelSpecRef Spec = IpcapRelational::makeSpec();
  std::vector<Decomposition> Decomps = enumerateDecompositions(Spec, EOpts);
  std::printf("# %zu adequate decomposition structures enumerated\n\n",
              Decomps.size());

  struct Row {
    std::string Decomp;
    double Seconds;
  };
  std::vector<Row> Rows;
  size_t TimedOut = 0;
  for (const Decomposition &D : Decomps) {
    IpcapRelational Daemon{Decomposition(D)};
    double S = replay(Daemon, Trace, Limit);
    if (S < 0) {
      ++TimedOut;
      continue;
    }
    Rows.push_back({D.canonicalString(/*IncludeDs=*/false), S});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Seconds < B.Seconds; });

  std::printf("%-4s %-10s %s\n", "rank", "time(s)", "decomposition");
  unsigned Rank = 1;
  for (const Row &R : Rows)
    std::printf("%-4u %s  %s\n", Rank++, formatSeconds(R.Seconds).c_str(),
                R.Decomp.c_str());
  std::printf("\n# %zu decompositions did not complete within %.1fs "
              "(elided, as in the paper)\n\n",
              TimedOut, Limit);

  // Best vs transposed (the paper's ~5x spread).
  double BestS, TransS;
  {
    IpcapRelational Best(IpcapRelational::makeDefaultDecomposition(Spec));
    BestS = replay(Best, Trace, Limit * 10);
  }
  {
    IpcapRelational Trans(IpcapRelational::makeTransposedDecomposition(Spec));
    TransS = replay(Trans, Trace, Limit * 10);
  }
  std::printf("best (btree local -> hash remote): %.4fs\n", BestS);
  std::printf("transposed (hash remote -> btree local): %.4fs  "
              "(%.1fx slower)\n",
              TransS, TransS / BestS);

  // Hand-coded parity (Section 6.2's equivalence claim).
  {
    Clock::time_point T0 = Clock::now();
    IpcapBaseline Base;
    for (const Packet &P : Trace)
      Base.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    (void)Base.flush();
    double BaseS = secondsSince(T0);
    std::printf("hand-coded baseline: %.4fs  (synthesized best is %.2fx)\n",
                BaseS, BestS / BaseS);
  }
  return 0;
}
