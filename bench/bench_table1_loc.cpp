//===- bench/bench_table1_loc.cpp - Table 1 reproduction ---------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Table 1: non-comment lines of code for the existing-system
// experiments. The paper compared each system's original hand-coded
// module against the synthesized replacement (relational module +
// decomposition mapping). Our stand-ins are the hand-coded baseline
// modules in src/baselines (written in the original systems' style:
// open-coded hash tables and intrusive lists for thttpd/ipcap, STL for
// ztopo) versus the relational modules in src/systems plus their
// decomposition specifications.
//
//===----------------------------------------------------------------------===//

#include "decomp/Printer.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"
#include "workloads/LocCount.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace relc;

namespace {

#ifndef RELC_SOURCE_DIR
#error "RELC_SOURCE_DIR must be defined by the build"
#endif

size_t fileLoc(const std::string &RelPath) {
  std::ifstream In(std::string(RELC_SOURCE_DIR) + "/" + RelPath);
  if (!In) {
    std::fprintf(stderr, "warning: missing %s\n", RelPath.c_str());
    return 0;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  return countLoc(Ss.str());
}

size_t filesLoc(std::initializer_list<const char *> Paths) {
  size_t Total = 0;
  for (const char *P : Paths)
    Total += fileLoc(P);
  return Total;
}

size_t decompositionLoc(const Decomposition &D) {
  return countLoc(printDecomposition(D));
}

} // namespace

int main() {
  std::printf("# Table 1: non-comment lines of code, hand-coded module vs "
              "synthesized module + decomposition\n");
  std::printf("# (stand-ins: src/baselines = the original modules, "
              "src/systems = the relational rewrites)\n\n");
  std::printf("%-10s %16s %19s %15s\n", "system", "original module",
              "synthesized module", "decomposition");

  struct Entry {
    const char *Name;
    size_t Original;
    size_t Synth;
    size_t Decomp;
  };
  std::vector<Entry> Entries;

  Entries.push_back(
      {"thttpd",
       filesLoc({"src/baselines/ThttpdBaseline.cpp",
                 "src/baselines/ThttpdBaseline.h"}),
       filesLoc({"src/systems/ThttpdRelational.cpp",
                 "src/systems/ThttpdRelational.h"}),
       decompositionLoc(ThttpdRelational::makeDefaultDecomposition(
           ThttpdRelational::makeSpec()))});
  Entries.push_back(
      {"ipcap",
       filesLoc({"src/baselines/IpcapBaseline.cpp",
                 "src/baselines/IpcapBaseline.h"}),
       filesLoc({"src/systems/IpcapRelational.cpp",
                 "src/systems/IpcapRelational.h"}),
       decompositionLoc(IpcapRelational::makeDefaultDecomposition(
           IpcapRelational::makeSpec()))});
  Entries.push_back(
      {"ztopo",
       filesLoc({"src/baselines/ZtopoBaseline.cpp",
                 "src/baselines/ZtopoBaseline.h"}),
       filesLoc({"src/systems/ZtopoRelational.cpp",
                 "src/systems/ZtopoRelational.h"}),
       decompositionLoc(ZtopoRelational::makeDefaultDecomposition(
           ZtopoRelational::makeSpec()))});
  Entries.push_back(
      {"scheduler",
       filesLoc({"src/baselines/SchedulerBaseline.cpp",
                 "src/baselines/SchedulerBaseline.h"}),
       filesLoc({"src/systems/SchedulerRelational.cpp",
                 "src/systems/SchedulerRelational.h"}),
       decompositionLoc(SchedulerRelational::makeDefaultDecomposition(
           SchedulerRelational::makeSpec()))});

  for (const Entry &E : Entries)
    std::printf("%-10s %16zu %19zu %15zu\n", E.Name, E.Original, E.Synth,
                E.Decomp);

  std::printf("\n# shape check (paper): the synthesized module plus its "
              "decomposition is comparable to or\n"
              "# smaller than the hand-coded module, with the biggest "
              "savings where the original\n"
              "# open-codes its data structures (thttpd, ipcap).\n");
  return 0;
}
