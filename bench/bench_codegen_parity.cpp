//===- bench/bench_codegen_parity.cpp - Compiled-RELC parity -----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Section 6.2's parity claim measured the paper's actual deliverable:
// C++ code *compiled* from the decomposition, not an interpreted
// engine. This bench runs the same scheduler workload through
//   (a) the hand-coded baseline module,
//   (b) the dynamic engine (plan interpreter), and
//   (c) the RELC-generated class — emitted by examples/codegen_demo at
//       build time and compiled into this binary.
// The paper's claim corresponds to (c) ≈ (a).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/SchedulerBaseline.h"
#include "systems/SchedulerRelational.h"
#include "workloads/Rng.h"

// The build runs `codegen_demo > scheduler_relation_gen.h` (see
// bench/CMakeLists.txt); the header is self-contained modulo ds/.
#include "scheduler_relation_gen.h"

#include <cstdio>
#include <cstdlib>

using namespace relc;
using namespace relcbench;

namespace {

// Sink so the probe work cannot be optimized away.
int64_t BenchmarkSink = 0;

/// The op mix of bench_systems_parity's scheduler section, shaped so
/// all three implementations can run it.
template <typename AddT, typename RemoveT, typename UpdateT, typename ProbeT>
double runMix(size_t Ops, AddT &&Add, RemoveT &&Remove, UpdateT &&Update,
              ProbeT &&Probe) {
  Rng R(42);
  Clock::time_point T0 = Clock::now();
  for (size_t Op = 0; Op != Ops; ++Op) {
    int64_t Ns = static_cast<int64_t>(R.below(8));
    int64_t Pid = static_cast<int64_t>(R.below(2048));
    switch (R.below(6)) {
    case 0:
    case 1:
      Add(Ns, Pid, static_cast<int64_t>(R.chance(0.5)), 0);
      break;
    case 2:
      Remove(Ns, Pid);
      break;
    case 3:
      Update(Ns, Pid, static_cast<int64_t>(R.chance(0.5)));
      break;
    case 4:
      Update(Ns, Pid, -1); // charge cpu: keep state, bump cpu
      break;
    case 5:
      Probe(Ns, Pid);
      break;
    }
  }
  return secondsSince(T0);
}

} // namespace

int main(int argc, char **argv) {
  size_t Ops = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200000;

  // (a) hand-coded baseline.
  double BaseS;
  {
    SchedulerBaseline S;
    BaseS = runMix(
        Ops,
        [&](int64_t Ns, int64_t Pid, int64_t St, int64_t Cpu) {
          S.addProcess(Ns, Pid, static_cast<ProcState>(St), Cpu);
        },
        [&](int64_t Ns, int64_t Pid) { S.removeProcess(Ns, Pid); },
        [&](int64_t Ns, int64_t Pid, int64_t St) {
          if (St < 0)
            S.chargeCpu(Ns, Pid, 1);
          else
            S.setState(Ns, Pid, static_cast<ProcState>(St));
        },
        [&](int64_t Ns, int64_t Pid) { (void)S.cpuOf(Ns, Pid); });
  }

  // (b) the dynamic engine.
  double DynS;
  {
    SchedulerRelational S;
    DynS = runMix(
        Ops,
        [&](int64_t Ns, int64_t Pid, int64_t St, int64_t Cpu) {
          S.addProcess(Ns, Pid, static_cast<ProcState>(St), Cpu);
        },
        [&](int64_t Ns, int64_t Pid) { S.removeProcess(Ns, Pid); },
        [&](int64_t Ns, int64_t Pid, int64_t St) {
          if (St < 0)
            S.chargeCpu(Ns, Pid, 1);
          else
            S.setState(Ns, Pid, static_cast<ProcState>(St));
        },
        [&](int64_t Ns, int64_t Pid) { (void)S.cpuOf(Ns, Pid); });
  }

  // (c) the RELC-generated class.
  double GenS;
  {
    relcgen::scheduler_relation S;
    GenS = runMix(
        Ops,
        [&](int64_t Ns, int64_t Pid, int64_t St, int64_t Cpu) {
          bool Exists = false;
          S.query_by_ns_pid(Ns, Pid,
                            [&](int64_t, int64_t) { Exists = true; });
          if (!Exists)
            S.insert(Ns, Pid, St, Cpu);
        },
        [&](int64_t Ns, int64_t Pid) { S.remove_by_ns_pid(Ns, Pid); },
        [&](int64_t Ns, int64_t Pid, int64_t St) {
          int64_t OldState = -1, OldCpu = 0;
          S.query_by_ns_pid(Ns, Pid, [&](int64_t StOut, int64_t CpuOut) {
            OldState = StOut;
            OldCpu = CpuOut;
          });
          if (OldState < 0)
            return;
          if (St < 0)
            S.update_by_ns_pid(Ns, Pid, OldState, OldCpu + 1);
          else
            S.update_by_ns_pid(Ns, Pid, St, OldCpu);
        },
        [&](int64_t Ns, int64_t Pid) {
          int64_t Sink = 0;
          S.query_by_ns_pid(Ns, Pid,
                            [&](int64_t, int64_t Cpu) { Sink = Cpu; });
          BenchmarkSink += Sink;
        });
  }

  std::printf("# scheduler, %zu ops of the Section 6.2 mix\n", Ops);
  std::printf("hand-coded baseline : %8.4fs (%6.2f Mops/s)\n", BaseS,
              Ops / BaseS / 1e6);
  std::printf("dynamic engine      : %8.4fs (%6.2f Mops/s)  %.2fx baseline\n",
              DynS, Ops / DynS / 1e6, DynS / BaseS);
  std::printf("RELC-generated code : %8.4fs (%6.2f Mops/s)  %.2fx baseline\n",
              GenS, Ops / GenS / 1e6, GenS / BaseS);
  std::printf("\n# shape check (paper): the generated code is within a small "
              "factor of hand-written\n# performance (Section 6.2's "
              "\"equivalent performance\" claim).\n");
  if (BenchmarkSink == 0x7fffffff)
    std::printf("# (sink)\n");
  return 0;
}
