//===- bench/bench_fig11_graph.cpp - Figure 11 reproduction ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Figure 11: elapsed times for the directed-graph benchmark across all
// decompositions of edges(src, dst, weight; src,dst → weight) with at
// most 4 map edges, on identical input. Three variants per
// decomposition:
//   F     — construct the edge relation + forward DFS over the graph;
//   F+B   — F plus a backward DFS;
//   F+B+D — F+B plus removing every edge one at a time.
// Rows are ranked by the F time; decompositions exceeding the time
// limit on a variant show "--" (the paper elided 68 such of its 84).
//
// The paper's input was the NW-USA road network (1.2M nodes / 2.8M
// edges); ours is a synthetic road network with the same sparse shape,
// sized for an interpreter-based engine (see DESIGN.md §4). Scale with:
//   bench_fig11_graph [grid-width] [time-limit-seconds] [max-edges]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "autotuner/Enumerator.h"
#include "decomp/Printer.h"
#include "systems/GraphRelational.h"
#include "workloads/RoadNetwork.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace relc;
using namespace relcbench;

namespace {

struct Row {
  std::string Decomp;
  double F = -1, FB = -1, FBD = -1;
};

/// Runs one benchmark variant; returns elapsed seconds or -1 on
/// deadline expiry. Phases: build, forward DFS, [backward DFS],
/// [delete all edges].
double runVariant(const Decomposition &D,
                  const std::vector<RoadEdge> &Edges, uint64_t Nodes,
                  bool Backward, bool Delete, double Limit) {
  Deadline Dl(Limit);
  GraphRelational G{Decomposition(D)};
  size_t Tick = 0;
  for (const RoadEdge &E : Edges) {
    G.addEdge(E.Src, E.Dst, E.Weight);
    if (++Tick % 512 == 0 && Dl.expired())
      return -1;
  }
  size_t Visited = 0;
  for (uint64_t N = 0; N != Nodes && Visited < Nodes; ++N) {
    Visited += G.depthFirstSearch(static_cast<int64_t>(N), false);
    if (Dl.expired())
      return -1;
    break; // one DFS from node 0 covers the (connected) road grid
  }
  if (Backward) {
    G.depthFirstSearch(0, true);
    if (Dl.expired())
      return -1;
  }
  if (Delete) {
    Tick = 0;
    for (const RoadEdge &E : Edges) {
      G.removeEdge(E.Src, E.Dst);
      if (++Tick % 256 == 0 && Dl.expired())
        return -1;
    }
  }
  return Dl.elapsed();
}

} // namespace

int main(int argc, char **argv) {
  RoadNetworkOptions Net;
  Net.Width = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 40;
  Net.Height = Net.Width;
  double Limit = argc > 2 ? std::atof(argv[2]) : 1.0;
  EnumeratorOptions EOpts;
  EOpts.MaxEdges = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
  EOpts.MaxResults = 200;

  std::vector<RoadEdge> Edges = generateRoadNetwork(Net);
  std::printf("# Figure 11: graph benchmark, %llu nodes / %zu edges, "
              "time limit %.1fs, decompositions with <= %u map edges\n",
              static_cast<unsigned long long>(roadNetworkNodeCount(Net)),
              Edges.size(), Limit, EOpts.MaxEdges);

  RelSpecRef Spec = GraphRelational::makeSpec();
  std::vector<Decomposition> Decomps = enumerateDecompositions(Spec, EOpts);
  std::printf("# %zu adequate decomposition structures enumerated\n\n",
              Decomps.size());

  std::vector<Row> Rows;
  size_t TimedOut = 0;
  for (const Decomposition &D : Decomps) {
    Row R;
    R.Decomp = D.canonicalString(/*IncludeDs=*/false);
    R.F = runVariant(D, Edges, roadNetworkNodeCount(Net), false, false,
                     Limit);
    if (R.F >= 0) {
      R.FB = runVariant(D, Edges, roadNetworkNodeCount(Net), true, false,
                        Limit);
      if (R.FB >= 0)
        R.FBD = runVariant(D, Edges, roadNetworkNodeCount(Net), true, true,
                           Limit);
    }
    if (R.F < 0 && R.FB < 0 && R.FBD < 0) {
      ++TimedOut; // the paper's elided band
      continue;
    }
    Rows.push_back(std::move(R));
  }

  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    double Fa = A.F < 0 ? 1e99 : A.F;
    double Fb = B.F < 0 ? 1e99 : B.F;
    return Fa < Fb;
  });

  std::printf("%-4s %-10s %-10s %-10s  %s\n", "rank", "F(s)", "F+B(s)",
              "F+B+D(s)", "decomposition (canonical)");
  unsigned Rank = 1;
  for (const Row &R : Rows)
    std::printf("%-4u %s %s %s  %s\n", Rank++, formatSeconds(R.F).c_str(),
                formatSeconds(R.FB).c_str(), formatSeconds(R.FBD).c_str(),
                R.Decomp.c_str());
  std::printf("\n# %zu decompositions did not finish any variant within "
              "%.1fs (elided, as in the paper)\n",
              TimedOut, Limit);

  // The paper's qualitative claims, checked mechanically:
  if (Rows.size() >= 2) {
    const Row &Best = Rows.front();
    bool BestDegradesOnB = Best.FB < 0 || Best.FB > Best.F * 3;
    std::printf("# shape check: rank-1 on F %s on F+B (paper: decomposition "
                "1 lacks a reverse index and degrades)\n",
                BestDegradesOnB ? "degrades" : "does NOT degrade");
  }
  return 0;
}
