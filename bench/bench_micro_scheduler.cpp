//===- bench/bench_micro_scheduler.cpp - Scheduler microbenchmark ------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The process-scheduler microbenchmark of Section 6.1 as google-
// benchmark suites: each core operation measured against the paper's
// Fig. 2 decomposition, a flat single-btree decomposition, and the
// hand-coded baseline — the per-operation view behind the "different
// decompositions, very different characteristics" claim.
//
//===----------------------------------------------------------------------===//

#include "baselines/SchedulerBaseline.h"
#include "decomp/Builder.h"
#include "systems/SchedulerRelational.h"

#include <benchmark/benchmark.h>

using namespace relc;

namespace {

Decomposition flatDecomposition() {
  RelSpecRef Spec = SchedulerRelational::makeSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("state, cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::Btree, W));
  return B.build();
}

template <typename SchedT> void populate(SchedT &S, int64_t N) {
  for (int64_t P = 0; P < N; ++P)
    S.addProcess(P % 16, P, P % 2 ? ProcState::Running : ProcState::Sleeping,
                 P);
}

enum class Impl { Fig2, Flat, Baseline };

template <Impl I> struct Make;
template <> struct Make<Impl::Fig2> {
  static SchedulerRelational make() { return SchedulerRelational(); }
};
template <> struct Make<Impl::Flat> {
  static SchedulerRelational make() {
    return SchedulerRelational(flatDecomposition());
  }
};
template <> struct Make<Impl::Baseline> {
  static SchedulerBaseline make() { return SchedulerBaseline(); }
};

template <Impl I> void BM_AddRemove(benchmark::State &State) {
  auto S = Make<I>::make();
  int64_t Pid = 1 << 20;
  for (auto _ : State) {
    S.addProcess(3, Pid, ProcState::Running, 0);
    S.removeProcess(3, Pid);
    ++Pid;
  }
}

template <Impl I> void BM_CpuProbe(benchmark::State &State) {
  auto S = Make<I>::make();
  populate(S, State.range(0));
  int64_t P = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.cpuOf(P % 16, P % State.range(0)));
    ++P;
  }
}

template <Impl I> void BM_SetState(benchmark::State &State) {
  auto S = Make<I>::make();
  populate(S, State.range(0));
  int64_t P = 0;
  for (auto _ : State) {
    S.setState(P % 16, P % State.range(0),
               P % 2 ? ProcState::Running : ProcState::Sleeping);
    ++P;
  }
}

template <Impl I> void BM_EnumerateState(benchmark::State &State) {
  auto S = Make<I>::make();
  populate(S, State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(S.processesIn(ProcState::Running));
  State.SetItemsProcessed(State.iterations() * State.range(0) / 2);
}

} // namespace

BENCHMARK(BM_AddRemove<Impl::Fig2>);
BENCHMARK(BM_AddRemove<Impl::Flat>);
BENCHMARK(BM_AddRemove<Impl::Baseline>);
BENCHMARK(BM_CpuProbe<Impl::Fig2>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_CpuProbe<Impl::Flat>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_CpuProbe<Impl::Baseline>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_SetState<Impl::Fig2>)->Arg(4096);
BENCHMARK(BM_SetState<Impl::Flat>)->Arg(4096);
BENCHMARK(BM_SetState<Impl::Baseline>)->Arg(4096);
BENCHMARK(BM_EnumerateState<Impl::Fig2>)->Arg(4096);
BENCHMARK(BM_EnumerateState<Impl::Flat>)->Arg(4096);
BENCHMARK(BM_EnumerateState<Impl::Baseline>)->Arg(4096);

BENCHMARK_MAIN();
