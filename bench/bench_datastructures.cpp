//===- bench/bench_datastructures.cpp - Container substrate bench ------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenches of the primitive container library
// (Section 6's data structure substrate): insert, lookup, full scan and
// unlink-by-node across the six ψ kinds. These are the constants behind
// the cost model's mψ(n) and the reason intrusive containers make
// shared-node removal cheap.
//
//===----------------------------------------------------------------------===//

#include "ds/AvlMap.h"
#include "ds/DListMap.h"
#include "ds/HashMap.h"
#include "ds/IntrusiveAvl.h"
#include "ds/IntrusiveList.h"
#include "ds/VectorMap.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace relc;

namespace {

struct BenchNode {
  int64_t Tag;
  MapHook<BenchNode, int64_t> Hooks[2];
};

struct Traits {
  using KeyT = int64_t;
  using NodeT = BenchNode;
  static constexpr unsigned NumSlots = 2;
  static bool equal(int64_t A, int64_t B) { return A == B; }
  static bool less(int64_t A, int64_t B) { return A < B; }
  static size_t hash(int64_t K) {
    return std::hash<int64_t>()(K);
  }
  static MapHook<BenchNode, int64_t> &hook(BenchNode *N, unsigned S) {
    return N->Hooks[S];
  }
};

template <typename MapT> MapT makeMap() { return MapT(); }
template <> IntrusiveList<Traits> makeMap() { return IntrusiveList<Traits>(0); }
template <> IntrusiveAvl<Traits> makeMap() { return IntrusiveAvl<Traits>(0); }

std::vector<std::unique_ptr<BenchNode>> &pool(size_t N) {
  static std::vector<std::unique_ptr<BenchNode>> Pool;
  while (Pool.size() < N) {
    Pool.push_back(std::make_unique<BenchNode>());
    Pool.back()->Tag = static_cast<int64_t>(Pool.size() - 1);
  }
  return Pool;
}

template <typename MapT> void BM_InsertErase(benchmark::State &State) {
  const int64_t N = State.range(0);
  auto &P = pool(static_cast<size_t>(N) + 1);
  for (auto _ : State) {
    State.PauseTiming();
    MapT Map = makeMap<MapT>();
    for (int64_t K = 0; K < N; ++K)
      Map.insert(K, P[static_cast<size_t>(K)].get());
    State.ResumeTiming();
    Map.insert(N, P[static_cast<size_t>(N)].get());
    Map.erase(N);
  }
}

template <typename MapT> void BM_Lookup(benchmark::State &State) {
  const int64_t N = State.range(0);
  auto &P = pool(static_cast<size_t>(N));
  MapT Map = makeMap<MapT>();
  for (int64_t K = 0; K < N; ++K)
    Map.insert(K, P[static_cast<size_t>(K)].get());
  int64_t K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Map.lookup(K % N));
    ++K;
  }
}

template <typename MapT> void BM_Scan(benchmark::State &State) {
  const int64_t N = State.range(0);
  auto &P = pool(static_cast<size_t>(N));
  MapT Map = makeMap<MapT>();
  for (int64_t K = 0; K < N; ++K)
    Map.insert(K, P[static_cast<size_t>(K)].get());
  for (auto _ : State) {
    int64_t Sum = 0;
    Map.forEach([&](int64_t Key, BenchNode *) {
      Sum += Key;
      return true;
    });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

template <typename MapT> void BM_EraseByNode(benchmark::State &State) {
  const int64_t N = State.range(0);
  auto &P = pool(static_cast<size_t>(N));
  MapT Map = makeMap<MapT>();
  for (int64_t K = 0; K < N; ++K)
    Map.insert(K, P[static_cast<size_t>(K)].get());
  int64_t K = 0;
  for (auto _ : State) {
    BenchNode *Node = P[static_cast<size_t>(K % N)].get();
    Map.eraseNode(Node);
    State.PauseTiming();
    Map.insert(K % N, Node);
    State.ResumeTiming();
    ++K;
  }
}

void BM_VectorLookup(benchmark::State &State) {
  const int64_t N = State.range(0);
  auto &P = pool(static_cast<size_t>(N));
  VectorMap<BenchNode> Map;
  for (int64_t K = 0; K < N; ++K)
    Map.insert(static_cast<size_t>(K), P[static_cast<size_t>(K)].get());
  int64_t K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Map.lookup(static_cast<size_t>(K % N)));
    ++K;
  }
}

} // namespace

BENCHMARK(BM_Lookup<DListMap<Traits>>)->Arg(64)->Arg(1024);
BENCHMARK(BM_Lookup<HashMap<Traits>>)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Lookup<AvlMap<Traits>>)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Lookup<IntrusiveList<Traits>>)->Arg(64)->Arg(1024);
BENCHMARK(BM_Lookup<IntrusiveAvl<Traits>>)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_VectorLookup)->Arg(64)->Arg(1024)->Arg(65536);

BENCHMARK(BM_InsertErase<HashMap<Traits>>)->Arg(1024)->Arg(65536);
BENCHMARK(BM_InsertErase<AvlMap<Traits>>)->Arg(1024)->Arg(65536);
BENCHMARK(BM_InsertErase<IntrusiveList<Traits>>)->Arg(1024);
BENCHMARK(BM_InsertErase<IntrusiveAvl<Traits>>)->Arg(1024)->Arg(65536);

BENCHMARK(BM_Scan<DListMap<Traits>>)->Arg(1024);
BENCHMARK(BM_Scan<HashMap<Traits>>)->Arg(1024);
BENCHMARK(BM_Scan<AvlMap<Traits>>)->Arg(1024);
BENCHMARK(BM_Scan<IntrusiveList<Traits>>)->Arg(1024);
BENCHMARK(BM_Scan<IntrusiveAvl<Traits>>)->Arg(1024);

// The intrusive payoff: O(1)/O(log n) unlink given only the node,
// versus the O(n) scans non-intrusive containers need.
BENCHMARK(BM_EraseByNode<IntrusiveList<Traits>>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EraseByNode<IntrusiveAvl<Traits>>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EraseByNode<HashMap<Traits>>)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EraseByNode<DListMap<Traits>>)->Arg(1024);

BENCHMARK_MAIN();
