//===- bench/bench_fig12_sharing.cpp - Figure 12 reproduction ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Figure 12: the three representative decompositions of the graph
// relation —
//   (1) forward-only chain,
//   (5) bidirectional with the weight node shared (intrusive maps),
//   (9) bidirectional with duplicated weight leaves —
// timed on the same phases as Fig. 11, plus the sharing ablation the
// paper discusses: node 5's sharing means fewer allocations and cheaper
// removal (the intrusive containers unlink a shared node from both
// paths without extra lookups).
//
//   bench_fig12_sharing [grid-width]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "systems/GraphRelational.h"
#include "workloads/RoadNetwork.h"

#include <cstdio>
#include <cstdlib>

using namespace relc;
using namespace relcbench;

namespace {

void run(const char *Name, Decomposition D,
         const std::vector<RoadEdge> &Edges) {
  GraphRelational G(std::move(D));

  Clock::time_point T0 = Clock::now();
  for (const RoadEdge &E : Edges)
    G.addEdge(E.Src, E.Dst, E.Weight);
  double Build = secondsSince(T0);
  size_t Live = G.relation().liveInstances();

  T0 = Clock::now();
  G.depthFirstSearch(0, /*Backward=*/false);
  double Fwd = secondsSince(T0);

  T0 = Clock::now();
  G.depthFirstSearch(0, /*Backward=*/true);
  double Bwd = secondsSince(T0);

  T0 = Clock::now();
  for (const RoadEdge &E : Edges)
    G.removeEdge(E.Src, E.Dst);
  double Del = secondsSince(T0);

  std::printf("%-22s build %7.4fs  F %7.4fs  B %8.4fs  delete %7.4fs  "
              "live-nodes %zu\n",
              Name, Build, Fwd, Bwd, Del, Live);
}

} // namespace

int main(int argc, char **argv) {
  RoadNetworkOptions Net;
  Net.Width = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 72;
  Net.Height = Net.Width;
  std::vector<RoadEdge> Edges = generateRoadNetwork(Net);
  std::printf("# Figure 12: representative decompositions, %llu nodes / "
              "%zu edges\n\n",
              static_cast<unsigned long long>(roadNetworkNodeCount(Net)),
              Edges.size());

  RelSpecRef Spec = GraphRelational::makeSpec();
  run("decomposition-1", GraphRelational::makeForwardOnly(Spec), Edges);
  run("decomposition-5-shared", GraphRelational::makeSharedBidirectional(Spec),
      Edges);
  run("decomposition-9-unshared",
      GraphRelational::makeUnsharedBidirectional(Spec), Edges);

  // The ablation, quantified: instances allocated per edge.
  {
    GraphRelational S(GraphRelational::makeSharedBidirectional(Spec));
    GraphRelational U(GraphRelational::makeUnsharedBidirectional(Spec));
    for (const RoadEdge &E : Edges) {
      S.addEdge(E.Src, E.Dst, E.Weight);
      U.addEdge(E.Src, E.Dst, E.Weight);
    }
    std::printf("\n# sharing ablation: shared holds %zu live instances, "
                "unshared %zu (one duplicated weight leaf per edge)\n",
                S.relation().liveInstances(), U.relation().liveInstances());
  }
  return 0;
}
