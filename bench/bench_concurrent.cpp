//===- bench/bench_concurrent.cpp - Sharded relation scaling -----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Thread-scaling loops over ConcurrentRelation for the scheduler,
// graph and ipcap systems: a parallel insert phase, a read-only key
// probe phase, a mixed phase (80% routed key queries, 10% updates,
// 10% duplicate inserts), an upsert phase (atomic read-modify-write
// on contended random keys — every writer races on the shard locks),
// a transact phase (transfer-style two-key transactions under
// shard-set two-phase locking), a full-scan phase (sequential
// fan-out at t=1, the parallel one-worker-per-shard merge-queue scan
// at t>1), a snapshot phase (O(shards) consistent-handle acquisition
// rate), and a ckptmix phase (upsert throughput while a dedicated
// checkpointer thread snapshots and extracts rows, as the server's
// off-committer checkpoint does), each run at 1/2/4/8 threads with
// total work held constant. Reports per-phase throughput
// and speedup over the single-thread run — the number the sharding
// exists for. --json <path> writes the machine-readable report (CI
// uploads it); --quick shrinks the loops; --threads caps the thread
// sweep; --shards sets the shard count (default 16); --rev stamps the
// report with a revision id (falls back to $GITHUB_SHA).
//
// Run on a single-core machine this degenerates to measuring lock
// overhead (speedup ≈ 1x or below); the scaling claims only mean
// something with >= 4 hardware threads.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "concurrent/ConcurrentRelation.h"
#include "systems/GraphRelational.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "workloads/Rng.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <thread>
#include <vector>

using namespace relc;
using namespace relcbench;

//===----------------------------------------------------------------------===//
// Allocation-counting hook, as in bench_hotpath but atomic: phases run
// on many threads, and a phase's global-heap traffic is the counter
// delta across it. The per-shard slab arenas exist precisely to keep
// this near zero on the steady-state insert path.
//===----------------------------------------------------------------------===//

static std::atomic<size_t> GlobalAllocCount{0};

static void *countedAlloc(size_t Sz) {
  GlobalAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}

static void *countedAlignedAlloc(size_t Sz, std::align_val_t Al) {
  GlobalAllocCount.fetch_add(1, std::memory_order_relaxed);
  size_t Align = static_cast<size_t>(Al);
  // aligned_alloc requires the size to be a multiple of the alignment.
  size_t Rounded = (Sz + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

void *operator new(size_t Sz) { return countedAlloc(Sz); }
void *operator new[](size_t Sz) { return countedAlloc(Sz); }
void *operator new(size_t Sz, std::align_val_t Al) {
  return countedAlignedAlloc(Sz, Al);
}
void *operator new[](size_t Sz, std::align_val_t Al) {
  return countedAlignedAlloc(Sz, Al);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }

namespace {

struct Workload {
  std::string Name;
  RelSpecRef Spec;
  std::function<Decomposition()> MakeDecomp;
  std::function<Tuple(int64_t)> Make; ///< I-th full tuple, unique key.
  ColumnSet KeyCols;
  ColumnSet ValueCols;
  ColumnId UpdateCol; ///< Non-key column rewritten by mixed-loop updates.
};

Workload makeScheduler() {
  Workload W;
  W.Name = "scheduler";
  W.Spec = SchedulerRelational::makeSpec();
  W.MakeDecomp = [Spec = W.Spec] {
    return SchedulerRelational::makeDefaultDecomposition(Spec);
  };
  const Catalog &Cat = W.Spec->catalog();
  W.Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("ns", I % 64)
        .set("pid", I)
        .set("state", I % 2)
        .set("cpu", I % 97)
        .build();
  };
  W.KeyCols = Cat.parseSet("ns, pid");
  W.ValueCols = Cat.parseSet("state, cpu");
  W.UpdateCol = Cat.get("cpu");
  return W;
}

Workload makeGraph() {
  Workload W;
  W.Name = "graph";
  W.Spec = GraphRelational::makeSpec();
  W.MakeDecomp = [Spec = W.Spec] {
    return GraphRelational::makeSharedBidirectional(Spec);
  };
  const Catalog &Cat = W.Spec->catalog();
  W.Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("src", I % 512)
        .set("dst", I / 512)
        .set("weight", I % 1009)
        .build();
  };
  W.KeyCols = Cat.parseSet("src, dst");
  W.ValueCols = Cat.parseSet("weight");
  W.UpdateCol = Cat.get("weight");
  return W;
}

Workload makeIpcap() {
  Workload W;
  W.Name = "ipcap";
  W.Spec = IpcapRelational::makeSpec();
  W.MakeDecomp = [Spec = W.Spec] {
    return IpcapRelational::makeDefaultDecomposition(Spec);
  };
  const Catalog &Cat = W.Spec->catalog();
  W.Make = [&Cat](int64_t I) {
    return TupleBuilder(Cat)
        .set("local", I % 256)
        .set("remote", I)
        .set("bytes_in", I * 3 % 65536)
        .set("bytes_out", I * 7 % 65536)
        .set("packets", I % 1024)
        .build();
  };
  W.KeyCols = Cat.parseSet("local, remote");
  W.ValueCols = Cat.parseSet("bytes_in, bytes_out, packets");
  W.UpdateCol = Cat.get("packets");
  return W;
}

volatile int64_t BenchSinkStore = 0;
void benchSink(int64_t V) { BenchSinkStore = V; }

/// Runs \p Body on \p NumThreads threads (thread id passed in) and
/// returns the wall-clock seconds from first launch to last join.
template <typename FnT> double runThreads(unsigned NumThreads, FnT &&Body) {
  Clock::time_point Start = Clock::now();
  if (NumThreads == 1) {
    Body(0u); // in-line: a 1-thread baseline without spawn overhead
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(NumThreads);
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&Body, T] { Body(T); });
    for (std::thread &Th : Threads)
      Th.join();
  }
  return secondsSince(Start);
}

struct PhaseResult {
  double Seconds = 0;
  size_t Ops = 0;
  size_t Allocs = 0; ///< Global-heap allocations across the phase.
  double opsPerSec() const { return Seconds > 0 ? double(Ops) / Seconds : 0; }
  double allocsPerOp() const { return Ops ? double(Allocs) / double(Ops) : 0; }
};


void report(JsonReporter &Json, const std::string &System, const char *Phase,
            unsigned Threads, const PhaseResult &M, double Baseline) {
  double Speedup = Baseline > 0 ? M.opsPerSec() / Baseline : 1.0;
  std::printf("  %-10s t=%u %12.0f ops/s   %5.2fx vs t=1   %6.3f allocs/op\n",
              Phase, Threads, M.opsPerSec(), Speedup, M.allocsPerOp());
  Json.record(System + "." + Phase + ".t" + std::to_string(Threads))
      .metric("threads", Threads)
      .metric("ops", double(M.Ops))
      .metric("seconds", M.Seconds)
      .metric("ops_per_sec", M.opsPerSec())
      .metric("speedup_vs_1", Speedup)
      .metric("allocs_per_op", M.allocsPerOp());
}

/// One system at one thread count. \returns the per-phase results
/// (insert, reinsert, query, mixed, upsert, transact, scan, snapshot,
/// ckptmix).
std::vector<PhaseResult> runSystem(const Workload &W, unsigned Shards,
                                   unsigned Threads, size_t N, size_t Probes,
                                   size_t MixedOps,
                                   const std::vector<Tuple> &Tuples,
                                   const std::vector<Tuple> &KeyPats) {
  ConcurrentOptions Opts;
  Opts.NumShards = Shards;
  ConcurrentRelation Rel(W.MakeDecomp(), Opts);

  // Parallel insert: thread T owns slice [T*N/Threads, (T+1)*N/Threads).
  // Cold: the shard arenas grow their slabs inside this phase. Each
  // phase brackets GlobalAllocCount to report its global-heap traffic.
  size_t AllocMark;
  PhaseResult Ins;
  Ins.Ops = N;
  auto InsertAll = [&] {
    return runThreads(Threads, [&](unsigned T) {
      size_t Lo = N * T / Threads, Hi = N * (T + 1) / Threads;
      for (size_t I = Lo; I != Hi; ++I)
        Rel.insert(Tuples[I]);
    });
  };
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Ins.Seconds = InsertAll();
  Ins.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Warm re-insert: clear() rewinds the slabs but retains them, so
  // this measures the fresh-insert steady state — nodes and cells come
  // from the warmed arenas, and global-heap traffic is only the
  // amortized residue (hash-bucket vector regrowth, per-node EdgeMap
  // wrappers), which main() asserts stays near zero.
  PhaseResult Reins;
  Reins.Ops = N;
  Rel.clear();
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Reins.Seconds = InsertAll();
  Reins.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Warm every shard's plan/cut caches so the measured loops are
  // steady state (as in bench_hotpath). Duplicate insert runs before
  // the update so the re-inserted tuple still matches the stored one
  // (inserting stale values after an update would violate the FD).
  ColumnId ValueCol = W.ValueCols.first();
  for (size_t I = 0; I != std::min<size_t>(N, 4 * Shards); ++I) {
    Rel.scanFrames(KeyPats[I], W.ValueCols,
                   [](const BindingFrame &) { return false; });
    Rel.insert(Tuples[I]);
    Tuple Changes;
    Changes.set(W.UpdateCol, Value::ofInt(0));
    Rel.update(KeyPats[I], Changes);
    Rel.remove(KeyPats[I]);
    Rel.insert(Tuples[I]);
  }

  // Read-only key probes, keys striped across threads.
  PhaseResult Probe;
  Probe.Ops = Probes;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Probe.Seconds = runThreads(Threads, [&](unsigned T) {
    int64_t Sum = 0;
    for (size_t I = T; I < Probes; I += Threads) {
      const Tuple &Key = KeyPats[I % N];
      Rel.scanFrames(Key, W.ValueCols, [&](const BindingFrame &F) {
        Sum += F.get(ValueCol).asInt();
        return false;
      });
    }
    benchSink(Sum);
  });
  Probe.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Mixed: 80% routed key queries over any key, 10% updates, 10%
  // remove+reinsert churn. Mutations stay on thread-owned keys (key
  // index ≡ thread id mod Threads) so racing writers never re-insert
  // a tuple another thread's update made stale — the concurrent
  // analogue of the FD preconditions of Lemma 4.
  PhaseResult Mixed;
  Mixed.Ops = MixedOps;
  size_t OwnSlots = N / Threads;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Mixed.Seconds = runThreads(Threads, [&](unsigned T) {
    Rng R(0x9e1ab0 + T);
    int64_t Sum = 0;
    for (size_t I = T; I < MixedOps; I += Threads) {
      uint64_t Dice = R.below(10);
      if (Dice < 8) {
        Rel.scanFrames(KeyPats[R.below(N)], W.ValueCols,
                       [&](const BindingFrame &F) {
                         Sum += F.get(ValueCol).asInt();
                         return false;
                       });
      } else {
        size_t K = T + Threads * R.below(OwnSlots);
        if (Dice == 8) {
          Tuple Changes;
          Changes.set(W.UpdateCol, Value::ofInt(int64_t(R.below(1009))));
          Rel.update(KeyPats[K], Changes);
        } else {
          Rel.remove(KeyPats[K]);
          Rel.insert(Tuples[K]);
        }
      }
    }
    benchSink(Sum);
  });
  Mixed.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Upsert: atomic read-modify-write on random keys across the WHOLE
  // keyspace — unlike the mixed loop, writers deliberately contend on
  // shared keys; the shard writer lock linearizes them (the primitive
  // replaces external ownership partitioning, see examples/
  // ipcap_daemon).
  PhaseResult Upsert;
  Upsert.Ops = MixedOps;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Upsert.Seconds = runThreads(Threads, [&](unsigned T) {
    Rng R(0xa11ce + T);
    for (size_t I = T; I < MixedOps; I += Threads) {
      int64_t Delta = int64_t(R.below(997)) + 1;
      Rel.upsert(KeyPats[R.below(N)], [&](const BindingFrame *Cur,
                                          Tuple &Values) {
        for (ColumnId C : W.ValueCols) {
          int64_t V = Cur ? Cur->get(C).asInt() : 0;
          Values.set(C, Value::ofInt(C == W.UpdateCol ? (V + Delta) % 100000
                                                      : V));
        }
      });
    }
  });
  Upsert.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Transact: transfer-style two-key transactions over contended
  // random keys — debit one tuple, credit another as one atomic,
  // serializable unit. Each transaction locks exactly the two owning
  // stripes (ascending order, two-phase), so this measures the
  // multi-key extension of the upsert phase: rival transfers on
  // overlapping keys serialize on the stripes they share.
  PhaseResult Transact;
  Transact.Ops = MixedOps / 2;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Transact.Seconds = runThreads(Threads, [&](unsigned T) {
    Rng R(0x7ab5a + T);
    for (size_t I = T; I < Transact.Ops; I += Threads) {
      size_t KA = R.below(N), KB = R.below(N);
      if (KB == KA)
        KB = (KB + 1) % N;
      int64_t Delta = int64_t(R.below(97)) + 1;
      auto Side = [&](int64_t Sign) {
        return [&, Sign](const BindingFrame *Cur, Tuple &Values) {
          for (ColumnId C : W.ValueCols) {
            int64_t V = Cur ? Cur->get(C).asInt() : 0;
            Values.set(C, Value::ofInt(C == W.UpdateCol
                                           ? (V + Sign * Delta + 100000) %
                                                 100000
                                           : V));
          }
        };
      };
      std::vector<TxOp> Ops;
      Ops.reserve(2);
      Ops.push_back(TxOp::upsert(KeyPats[KA], Side(-1)));
      Ops.push_back(TxOp::upsert(KeyPats[KB], Side(+1)));
      Rel.transact(Ops);
    }
  });
  Transact.Allocs =
      GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Full scans: the sequential fan-out at t=1 versus the parallel
  // one-worker-per-shard merge-queue scan at t>1 — speedup_vs_1 is
  // the parallel fan-out win. Every row crosses the bounded queue, so
  // on a single core this reads WELL below 1x (pure overhead, no
  // parallelism); the number only means something on multi-core CI.
  size_t ScanReps = std::max<size_t>(1, MixedOps / N);
  PhaseResult Scan;
  Scan.Ops = ScanReps * Rel.size();
  ColumnSet ScanCols = W.KeyCols;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Scan.Seconds = runThreads(1, [&](unsigned) {
    int64_t Sum = 0;
    for (size_t Rep = 0; Rep != ScanReps; ++Rep) {
      auto Sink = [&](const BindingFrame &F) {
        Sum += F.get(W.KeyCols.first()).asInt();
        return true;
      };
      if (Threads == 1)
        Rel.scanFrames(Tuple(), ScanCols, Sink);
      else
        Rel.scanFramesParallel(Tuple(), ScanCols, Sink);
    }
    benchSink(Sum);
  });
  Scan.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Snapshot acquisition: grabbing a consistent handle is O(shards) —
  // an all-stripe shared acquisition plus one refcount bump per shard,
  // no data copy — so ops/s here is the acquisition rate (invert for
  // latency). Handles are dropped immediately, so the release/retire
  // path is in the loop too.
  PhaseResult Snap;
  Snap.Ops = MixedOps;
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  Snap.Seconds = runThreads(Threads, [&](unsigned T) {
    int64_t Sum = 0;
    for (size_t I = T; I < MixedOps; I += Threads) {
      ConcurrentRelation::Snapshot S = Rel.snapshot();
      Sum += int64_t(S.size());
    }
    benchSink(Sum);
  });
  Snap.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  // Commit throughput under an active checkpoint: a dedicated
  // checkpointer thread continuously snapshots and extracts every row
  // (what the server's checkpoint thread does off the committer) while
  // the measured threads run the upsert loop. Compare ops/s with the
  // plain upsert phase above: the COW design's claim is that a running
  // checkpoint costs writers almost nothing — the extractor holds no
  // lock while scanning, and writers only pay the copy-on-first-write
  // of shards the pinned snapshot still shares (which shows up in
  // allocs/op, not in stalls).
  PhaseResult CkptMix;
  CkptMix.Ops = MixedOps;
  std::atomic<bool> CkptStop{false};
  AllocMark = GlobalAllocCount.load(std::memory_order_relaxed);
  std::thread Checkpointer([&] {
    int64_t Rows = 0;
    while (!CkptStop.load(std::memory_order_relaxed)) {
      ConcurrentRelation::Snapshot S = Rel.snapshot();
      S.scanFrames(Tuple(), ScanCols, [&](const BindingFrame &F) {
        Rows += F.get(W.KeyCols.first()).asInt();
        return true;
      });
    }
    benchSink(Rows);
  });
  CkptMix.Seconds = runThreads(Threads, [&](unsigned T) {
    Rng R(0xc4b7 + T);
    for (size_t I = T; I < MixedOps; I += Threads) {
      int64_t Delta = int64_t(R.below(997)) + 1;
      Rel.upsert(KeyPats[R.below(N)], [&](const BindingFrame *Cur,
                                          Tuple &Values) {
        for (ColumnId C : W.ValueCols) {
          int64_t V = Cur ? Cur->get(C).asInt() : 0;
          Values.set(C, Value::ofInt(C == W.UpdateCol ? (V + Delta) % 100000
                                                      : V));
        }
      });
    }
  });
  CkptStop.store(true, std::memory_order_relaxed);
  Checkpointer.join();
  CkptMix.Allocs = GlobalAllocCount.load(std::memory_order_relaxed) - AllocMark;

  return {Ins, Reins, Probe, Mixed, Upsert, Transact, Scan, Snap, CkptMix};
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = hasArg(argc, argv, "--quick");
  const char *JsonPath = argValue(argc, argv, "--json");
  if (hasArg(argc, argv, "--json") && !JsonPath) {
    std::fprintf(stderr, "error: --json requires a path argument\n");
    return 1;
  }
  const char *ShardsArg = argValue(argc, argv, "--shards");
  const char *ThreadsArg = argValue(argc, argv, "--threads");
  int ShardsVal = ShardsArg ? std::atoi(ShardsArg) : 16;
  int ThreadsVal = ThreadsArg ? std::atoi(ThreadsArg) : 8;
  if (ShardsVal <= 0 || ThreadsVal <= 0) {
    std::fprintf(stderr, "error: --shards/--threads must be positive\n");
    return 1;
  }
  unsigned Shards = unsigned(ShardsVal);
  unsigned MaxThreads = unsigned(ThreadsVal);

  size_t N = Quick ? 8000 : 40000;
  size_t Probes = Quick ? 24000 : 160000;
  size_t MixedOps = Quick ? 16000 : 120000;

  std::printf("hardware threads: %u, shards: %u\n",
              std::thread::hardware_concurrency(), Shards);

  JsonReporter Json("concurrent", Quick ? "quick" : "full");
  // Provenance for the regression gate: results from a different
  // machine class or shard configuration are not comparable, and the
  // committed baseline records the revision it was captured at.
  const char *Rev = argValue(argc, argv, "--rev");
  if (!Rev)
    Rev = std::getenv("GITHUB_SHA");
  Json.meta("hardware_concurrency", double(std::thread::hardware_concurrency()))
      .meta("shards", double(Shards))
      .meta("max_threads", double(MaxThreads))
      .meta("git_rev", Rev ? Rev : "unknown");
  Workload Workloads[] = {makeScheduler(), makeGraph(), makeIpcap()};
  const char *Phases[] = {"insert",   "reinsert", "query",
                          "mixed",    "upsert",   "transact",
                          "scan",     "snapshot", "ckptmix"};

  // Warm fresh inserts must come out of the shard arenas, not the
  // global heap. The 0.25 allows the amortized residue (hash-bucket
  // vector regrowth and per-node EdgeMap wrappers) while still
  // catching any per-insert heap allocation sneaking back in.
  const double MaxReinsertAllocsPerOp = 0.25;
  bool AllocRegression = false;

  for (const Workload &W : Workloads) {
    std::printf("%s (n=%zu)\n", W.Name.c_str(), N);
    std::vector<Tuple> Tuples;
    Tuples.reserve(N);
    for (size_t I = 0; I != N; ++I)
      Tuples.push_back(W.Make(int64_t(I)));
    std::vector<Tuple> KeyPats;
    KeyPats.reserve(N);
    for (const Tuple &T : Tuples)
      KeyPats.push_back(T.project(W.KeyCols));

    std::vector<double> Baselines(9, 0.0);
    for (unsigned Threads = 1; Threads <= MaxThreads; Threads *= 2) {
      std::vector<PhaseResult> Results = runSystem(
          W, Shards, Threads, N, Probes, MixedOps, Tuples, KeyPats);
      for (size_t P = 0; P != Results.size(); ++P) {
        if (Threads == 1)
          Baselines[P] = Results[P].opsPerSec();
        report(Json, W.Name, Phases[P], Threads, Results[P], Baselines[P]);
        if (std::string(Phases[P]) == "reinsert" &&
            Results[P].allocsPerOp() > MaxReinsertAllocsPerOp) {
          std::fprintf(stderr,
                       "FAIL: %s reinsert t=%u allocates %.3f/op from the "
                       "global heap (limit %.2f) — the arena path regressed\n",
                       W.Name.c_str(), Threads, Results[P].allocsPerOp(),
                       MaxReinsertAllocsPerOp);
          AllocRegression = true;
        }
      }
    }
  }

  if (JsonPath && !Json.write(JsonPath))
    return 1;
  return AllocRegression ? 1 : 0;
}
