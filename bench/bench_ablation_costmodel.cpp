//===- bench/bench_ablation_costmodel.cpp - Section 4.3 ablation -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Validates the planner's heuristic cost model E (Section 4.3): for a
// set of query shapes over populated relations, every Pareto-optimal
// valid plan is executed and timed; the bench reports, per shape, the
// predicted-vs-measured ranking and whether the plan the planner would
// pick (lowest E) is within a small factor of the actually-fastest
// plan. This is the design-choice ablation DESIGN.md calls out for the
// cost model.
//
//   bench_ablation_costmodel [rows-per-relation]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "autotuner/Enumerator.h"
#include "decomp/Builder.h"
#include "query/Exec.h"
#include "query/Planner.h"
#include "runtime/Mutators.h"
#include "workloads/Rng.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace relc;
using namespace relcbench;

namespace {

struct Shape {
  const char *Label;
  const char *InCols;
  const char *OutCols;
};

/// Builds Fig. 2 for the scheduler spec.
std::shared_ptr<const Decomposition> schedulerFig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return std::make_shared<Decomposition>(B.build());
}

std::shared_ptr<const Decomposition> graphForward(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::Btree, W));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::Btree, W));
  B.addNode("x", "", B.join(B.map("src", DsKind::HashTable, Y),
                            B.map("dst", DsKind::HashTable, Z)));
  return std::make_shared<Decomposition>(B.build());
}

double timePlan(const QueryPlan &P, const InstanceGraph &G,
                const std::vector<Tuple> &Patterns, unsigned Repeats) {
  Clock::time_point T0 = Clock::now();
  size_t Sink = 0;
  for (unsigned R = 0; R != Repeats; ++R)
    for (const Tuple &Pat : Patterns)
      execPlan(P, G, Pat, [&](const Tuple &) {
        ++Sink;
        return true;
      });
  (void)Sink;
  return secondsSince(T0);
}

void runRelation(const char *Name,
                 std::shared_ptr<const Decomposition> D,
                 const std::vector<Tuple> &Rows,
                 const std::vector<Shape> &Shapes, unsigned Repeats) {
  const Catalog &Cat = D->catalog();
  InstanceGraph G(D);
  for (const Tuple &T : Rows)
    dinsert(G, T);

  // Profile real fanouts so E sees the same distribution execution does.
  CostParams Params;
  // (simple default; per-edge profiling is exercised in the test suite)

  std::printf("\n== %s (%zu rows, %u repeats per shape)\n", Name,
              Rows.size(), Repeats);
  std::printf("%-28s %6s  %-12s %-12s %s\n", "shape", "#plans",
              "E-pick (s)", "fastest (s)", "rank agreement");

  Rng R(7);
  for (const Shape &S : Shapes) {
    ColumnSet In = Cat.parseSet(S.InCols);
    ColumnSet Out = Cat.parseSet(S.OutCols);
    std::vector<QueryPlan> Plans = enumeratePlans(*D, In, Params);
    // Keep plans that answer the shape (A ⊆ B, outputs available).
    std::vector<QueryPlan> Usable;
    for (QueryPlan &P : Plans)
      if (In.subsetOf(P.OutputCols) &&
          Out.subsetOf(P.OutputCols.unionWith(In)))
        Usable.push_back(std::move(P));
    if (Usable.empty())
      continue;

    // Patterns drawn from live rows so queries hit.
    std::vector<Tuple> Patterns;
    for (unsigned I = 0; I != 32 && !Rows.empty(); ++I)
      Patterns.push_back(Rows[R.below(Rows.size())].project(In));

    struct Measured {
      double Est;
      double Secs;
    };
    std::vector<Measured> Ms;
    for (const QueryPlan &P : Usable)
      Ms.push_back({P.EstimatedCost, timePlan(P, G, Patterns, Repeats)});

    // The plan E picks vs the measured-fastest plan.
    size_t EPick = 0, Fastest = 0;
    for (size_t I = 1; I != Ms.size(); ++I) {
      if (Ms[I].Est < Ms[EPick].Est)
        EPick = I;
      if (Ms[I].Secs < Ms[Fastest].Secs)
        Fastest = I;
    }

    // Rank agreement: fraction of plan pairs the model orders the same
    // way as the measurements (Kendall-style).
    size_t Agree = 0, Pairs = 0;
    for (size_t I = 0; I != Ms.size(); ++I)
      for (size_t J = I + 1; J != Ms.size(); ++J) {
        if (Ms[I].Est == Ms[J].Est)
          continue;
        ++Pairs;
        bool ModelSays = Ms[I].Est < Ms[J].Est;
        bool ClockSays = Ms[I].Secs < Ms[J].Secs;
        if (ModelSays == ClockSays)
          ++Agree;
      }

    std::printf("%-28s %6zu  %-12.6f %-12.6f %zu/%zu pairs  %s\n", S.Label,
                Usable.size(), Ms[EPick].Secs, Ms[Fastest].Secs, Agree,
                Pairs,
                Ms[EPick].Secs <= Ms[Fastest].Secs * 2.0
                    ? "(pick within 2x of fastest)"
                    : "(PICK SLOW)");
  }
}

} // namespace

namespace {

/// Cross-decomposition ablation: the cost model's real job inside the
/// autotuner is ranking *decompositions* by the predicted cost of a
/// workload's query mix. Compares E-predicted against measured ranking
/// across all enumerated decompositions of the edges spec.
void crossDecompositionAblation(size_t NumRows) {
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  const Catalog &Cat = Spec->catalog();
  EnumeratorOptions EOpts;
  EOpts.MaxEdges = 3;
  EOpts.MaxResults = 40;
  std::vector<Decomposition> Decomps = enumerateDecompositions(Spec, EOpts);

  std::vector<Tuple> Rows;
  Rng R(3);
  for (size_t I = 0; I != NumRows; ++I)
    Rows.push_back(TupleBuilder(Cat)
                       .set("src", static_cast<int64_t>(R.below(64)))
                       .set("dst", static_cast<int64_t>(I))
                       .set("weight", static_cast<int64_t>(R.below(100)))
                       .build());

  // Workload: per row inserted, one key probe and one successor scan.
  ColumnSet KeyIn = Cat.parseSet("src, dst");
  ColumnSet SuccIn = Cat.parseSet("src");
  struct Scored {
    double Predicted;
    double Measured;
  };
  std::vector<Scored> Scores;
  for (const Decomposition &D : Decomps) {
    CostParams Params;
    auto KeyPlan = planQuery(D, KeyIn, Cat.parseSet("weight"), Params);
    auto SuccPlan = planQuery(D, SuccIn, Cat.parseSet("dst"), Params);
    if (!KeyPlan || !SuccPlan)
      continue;
    double Predicted = KeyPlan->EstimatedCost + SuccPlan->EstimatedCost;

    auto DRef = std::make_shared<Decomposition>(D);
    InstanceGraph G(DRef);
    for (const Tuple &T : Rows)
      dinsert(G, T);
    std::vector<Tuple> KeyPats, SuccPats;
    for (unsigned I = 0; I != 64; ++I) {
      KeyPats.push_back(Rows[R.below(Rows.size())].project(KeyIn));
      SuccPats.push_back(Rows[R.below(Rows.size())].project(SuccIn));
    }
    double Measured = timePlan(*KeyPlan, G, KeyPats, 4) +
                      timePlan(*SuccPlan, G, SuccPats, 4);
    Scores.push_back({Predicted, Measured});
  }

  size_t Agree = 0, Pairs = 0;
  for (size_t I = 0; I != Scores.size(); ++I)
    for (size_t J = I + 1; J != Scores.size(); ++J) {
      if (Scores[I].Predicted == Scores[J].Predicted)
        continue;
      ++Pairs;
      if ((Scores[I].Predicted < Scores[J].Predicted) ==
          (Scores[I].Measured < Scores[J].Measured))
        ++Agree;
    }
  std::printf("\n== cross-decomposition ranking (edges spec, %zu "
              "decompositions, probe+scan mix)\n",
              Scores.size());
  std::printf("model-vs-clock pair agreement: %zu/%zu (%.0f%%)\n", Agree,
              Pairs, Pairs ? 100.0 * Agree / Pairs : 0.0);
}

} // namespace

int main(int argc, char **argv) {
  size_t NumRows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 4000;

  {
    RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                    {{"ns, pid", "state, cpu"}});
    const Catalog &Cat = Spec->catalog();
    std::vector<Tuple> Rows;
    Rng R(1);
    for (size_t I = 0; I != NumRows; ++I)
      Rows.push_back(TupleBuilder(Cat)
                         .set("ns", static_cast<int64_t>(R.below(16)))
                         .set("pid", static_cast<int64_t>(I))
                         .set("state", static_cast<int64_t>(R.below(2)))
                         .set("cpu", static_cast<int64_t>(R.below(1000)))
                         .build());
    runRelation("scheduler / Fig. 2", schedulerFig2(Spec), Rows,
                {{"probe by key", "ns, pid", "cpu"},
                 {"processes of one state", "state", "ns, pid"},
                 {"pids of one namespace", "ns", "pid"},
                 {"ns+state intersection", "ns, state", "pid"}},
                /*Repeats=*/20);
  }

  {
    RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                    {{"src, dst", "weight"}});
    const Catalog &Cat = Spec->catalog();
    std::vector<Tuple> Rows;
    Rng R(2);
    for (size_t I = 0; I != NumRows; ++I)
      Rows.push_back(TupleBuilder(Cat)
                         .set("src", static_cast<int64_t>(R.below(256)))
                         .set("dst", static_cast<int64_t>(I))
                         .set("weight", static_cast<int64_t>(R.below(100)))
                         .build());
    runRelation("edges / bidirectional", graphForward(Spec), Rows,
                {{"weight of one edge", "src, dst", "weight"},
                 {"successors", "src", "dst"},
                 {"predecessors", "dst", "src"}},
                /*Repeats=*/20);
  }

  crossDecompositionAblation(NumRows / 2);

  std::printf("\n# shape check: high pair agreement and E-pick within a "
              "small factor of the fastest plan\n"
              "# mean the Section 4.3 heuristic steers the planner "
              "correctly on these shapes.\n");
  return 0;
}
