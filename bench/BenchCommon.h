//===- bench/BenchCommon.h - Shared benchmark helpers ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing, time-limit, argument-parsing and JSON-reporting
/// helpers shared by the figure/table reproduction benches.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BENCH_BENCHCOMMON_H
#define RELC_BENCH_BENCHCOMMON_H

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

namespace relcbench {

using Clock = std::chrono::steady_clock;

inline double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Runs \p Fn and returns elapsed seconds, or a negative value if \p Fn
/// itself bailed out (Fn returns false to signal a timeout).
template <typename FnT> double timeOrTimeout(FnT &&Fn) {
  Clock::time_point Start = Clock::now();
  if (!Fn())
    return -1.0;
  return secondsSince(Start);
}

/// A cooperative deadline: workloads call expired() periodically and
/// unwind when it trips.
class Deadline {
public:
  explicit Deadline(double LimitSeconds)
      : Start(Clock::now()), Limit(LimitSeconds) {}

  bool expired() const { return secondsSince(Start) > Limit; }
  double elapsed() const { return secondsSince(Start); }

private:
  Clock::time_point Start;
  double Limit;
};

inline std::string formatSeconds(double S) {
  if (S < 0)
    return "   --   ";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%8.4f", S);
  return Buf;
}

/// True if \p Flag appears among the arguments.
inline bool hasArg(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

/// The value following \p Flag ("--json out.json"), or nullptr when
/// the flag is absent, last, or followed by another "--" flag (a
/// missing value must not silently swallow the next option — callers
/// pair this with hasArg to reject the malformed invocation loudly).
inline const char *argValue(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return std::strncmp(Argv[I + 1], "--", 2) == 0 ? nullptr : Argv[I + 1];
  return nullptr;
}

/// One measured benchmark series: a name plus named numeric metrics.
/// Metrics are kept in insertion order so reports are diffable.
struct BenchRecord {
  std::string Name;
  std::vector<std::pair<std::string, double>> Metrics;

  BenchRecord &metric(std::string Key, double V) {
    Metrics.emplace_back(std::move(Key), V);
    return *this;
  }
};

/// Accumulates BenchRecords and writes them as a small self-contained
/// JSON document (the --json reporting mode shared by the bench
/// drivers; CI uploads these as per-PR artifacts so the perf
/// trajectory is visible over time).
class JsonReporter {
public:
  explicit JsonReporter(std::string BenchName, std::string Mode = "full")
      : BenchName(std::move(BenchName)), Mode(std::move(Mode)) {}

  /// The returned reference stays valid across later record() calls
  /// (deque storage), so callers may hold it instead of chaining.
  BenchRecord &record(std::string Name) {
    Records.push_back(BenchRecord{std::move(Name), {}});
    return Records.back();
  }

  /// Attaches one piece of run metadata (hardware, configuration,
  /// provenance), emitted as a "meta" object in the JSON header so a
  /// regression gate can tell results from different machines or
  /// configurations apart. Values are written as JSON strings; numeric
  /// callers use the overload below.
  JsonReporter &meta(std::string Key, std::string V) {
    Meta.emplace_back(std::move(Key), MetaValue{std::move(V), 0, true});
    return *this;
  }
  JsonReporter &meta(std::string Key, double V) {
    Meta.emplace_back(std::move(Key), MetaValue{{}, V, false});
    return *this;
  }

  /// Writes the report; \returns false (with a message on stderr) if
  /// the file cannot be opened.
  bool write(const char *Path) const {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", Path);
      return false;
    }
    std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n",
                 BenchName.c_str(), Mode.c_str());
    if (!Meta.empty()) {
      std::fprintf(F, "  \"meta\": {");
      for (size_t I = 0; I != Meta.size(); ++I) {
        const auto &[Key, V] = Meta[I];
        std::fprintf(F, "%s\"%s\": ", I ? ", " : "", Key.c_str());
        if (V.IsString)
          std::fprintf(F, "\"%s\"", V.Str.c_str());
        else
          std::fprintf(F, "%.6g", V.Num);
      }
      std::fprintf(F, "},\n");
    }
    std::fprintf(F, "  \"results\": [\n");
    for (size_t I = 0; I != Records.size(); ++I) {
      const BenchRecord &R = Records[I];
      std::fprintf(F, "    {\"name\": \"%s\"", R.Name.c_str());
      for (const auto &[Key, V] : R.Metrics)
        std::fprintf(F, ", \"%s\": %.6g", Key.c_str(), V);
      std::fprintf(F, "}%s\n", I + 1 == Records.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    return true;
  }

private:
  struct MetaValue {
    std::string Str;
    double Num;
    bool IsString;
  };

  std::string BenchName;
  std::string Mode;
  std::vector<std::pair<std::string, MetaValue>> Meta;
  std::deque<BenchRecord> Records;
};

} // namespace relcbench

#endif // RELC_BENCH_BENCHCOMMON_H
