//===- bench/BenchCommon.h - Shared benchmark helpers ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing and time-limit helpers shared by the figure/table
/// reproduction benches.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BENCH_BENCHCOMMON_H
#define RELC_BENCH_BENCHCOMMON_H

#include <chrono>
#include <cstdio>
#include <string>

namespace relcbench {

using Clock = std::chrono::steady_clock;

inline double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Runs \p Fn and returns elapsed seconds, or a negative value if \p Fn
/// itself bailed out (Fn returns false to signal a timeout).
template <typename FnT> double timeOrTimeout(FnT &&Fn) {
  Clock::time_point Start = Clock::now();
  if (!Fn())
    return -1.0;
  return secondsSince(Start);
}

/// A cooperative deadline: workloads call expired() periodically and
/// unwind when it trips.
class Deadline {
public:
  explicit Deadline(double LimitSeconds)
      : Start(Clock::now()), Limit(LimitSeconds) {}

  bool expired() const { return secondsSince(Start) > Limit; }
  double elapsed() const { return secondsSince(Start); }

private:
  Clock::time_point Start;
  double Limit;
};

inline std::string formatSeconds(double S) {
  if (S < 0)
    return "   --   ";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%8.4f", S);
  return Buf;
}

} // namespace relcbench

#endif // RELC_BENCH_BENCHCOMMON_H
